// A bounded multi-producer task queue with explicit overload policies.
//
// The shard-owned-worker serving model (core/sharded_stream_server.h) puts
// a queue between producers (callers submitting item batches) and one
// consumer (the shard's worker thread). The queue is where overload becomes
// a *defined* condition instead of an accident: when it is full, the
// configured OverloadPolicy decides whether the producer waits, the new
// batch is dropped, or the oldest queued batch is dropped — and every drop
// is counted by the caller via the entries this API hands back, never
// silent.
//
// Entries carry a `sheddable` bit. Only sheddable entries participate in
// shedding; control entries (stats snapshots, checkpoint tasks, drain
// barriers) are pushed with OverloadPolicy::kBlock and can neither be
// rejected nor evicted, so a saturated queue delays queries but never
// loses them.
//
// Implementation is a mutex + two condition variables over a deque:
// deliberately boring, so the concurrency story is auditable and
// ThreadSanitizer-clean. The push path fires the "bounded_queue.push"
// fault-injection point (util/fault_injection.h) before taking the lock,
// letting tests widen producer/consumer races deterministically.
#ifndef KVEC_UTIL_BOUNDED_QUEUE_H_
#define KVEC_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/fault_injection.h"

namespace kvec {

// What a full queue does to a new sheddable entry.
enum class OverloadPolicy {
  kBlock,       // producer waits for space (backpressure)
  kShedNewest,  // reject the incoming entry
  kShedOldest,  // evict the oldest sheddable entry, accept the new one
};

// "block" | "shed-newest" | "shed-oldest" (the CLI flag spellings).
bool ParseOverloadPolicy(const std::string& text, OverloadPolicy* policy);
const char* OverloadPolicyName(OverloadPolicy policy);

template <typename T>
class BoundedQueue {
 public:
  enum class PushResult {
    kAccepted,    // entry is in the queue
    kShedNewest,  // full under kShedNewest: entry was rejected
    kClosed,      // Close() already ran; entry was rejected
  };

  explicit BoundedQueue(int capacity) : capacity_(capacity) {
    KVEC_CHECK_GT(capacity, 0);
  }

  // Pushes `value` under `policy`. `sheddable` marks entries a kShedOldest
  // push may evict (and a kShedNewest full queue may reject); control
  // entries pass false and should use kBlock. Entries evicted by
  // kShedOldest are appended to `shed_out` (may be null only if the caller
  // can prove no eviction happens) so the producer can account for every
  // dropped payload. Thread-safe.
  PushResult Push(T value, OverloadPolicy policy, bool sheddable,
                  std::vector<T>* shed_out) {
    // Delay point: tests widen the route-to-enqueue window here (not a
    // failable site, so the verdict is ignored).
    (void)KVEC_FAULT_POINT("bounded_queue.push");
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (entries_.size() >= capacity_) {
      if (sheddable && policy == OverloadPolicy::kShedNewest) {
        return PushResult::kShedNewest;
      }
      if (sheddable && policy == OverloadPolicy::kShedOldest) {
        // Evict the oldest sheddable entry. If every queued entry is a
        // control task (possible only under pathological queue depths),
        // fall through to blocking: control tasks are never shed.
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->sheddable) {
            shed_out->push_back(std::move(it->value));
            entries_.erase(it);
            entries_.push_back({std::move(value), sheddable});
            return PushResult::kAccepted;
          }
        }
      }
      not_full_.wait(lock, [this]() {
        return closed_ || entries_.size() < capacity_;
      });
      if (closed_) return PushResult::kClosed;
    }
    entries_.push_back({std::move(value), sheddable});
    lock.unlock();
    not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  // Blocks until an entry is available or the queue is closed *and* empty.
  // Returns false only in the latter case: a closed queue still drains, so
  // shutdown never loses accepted work.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this]() { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return false;
    *out = std::move(entries_.front().value);
    entries_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // After Close, pushes fail with kClosed and Pop drains what was already
  // accepted, then returns false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  int capacity() const { return static_cast<int>(capacity_); }

 private:
  struct Entry {
    T value;
    bool sheddable = false;
  };

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;  // signalled by Push
  std::condition_variable not_full_;   // signalled by Pop / Close
  std::deque<Entry> entries_;          // guarded by mutex_
  size_t capacity_;
  bool closed_ = false;  // guarded by mutex_
};

}  // namespace kvec

#endif  // KVEC_UTIL_BOUNDED_QUEUE_H_
