// Lightweight assertion macros used throughout the library.
//
// The library does not use exceptions (matching the Google C++ style this
// project follows); violated invariants abort with a source location and a
// human-readable message streamed by the caller:
//
//   KVEC_CHECK(n > 0) << "need a positive count, got " << n;
//
// KVEC_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#pragma once

#include <sstream>
#include <string>

namespace kvec {
namespace internal {

// Collects the streamed message and aborts the process in its destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kvec

#define KVEC_CHECK(condition)                                            \
  if (condition) {                                                       \
  } else /* NOLINT */                                                    \
    ::kvec::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define KVEC_CHECK_EQ(a, b) KVEC_CHECK((a) == (b))
#define KVEC_CHECK_NE(a, b) KVEC_CHECK((a) != (b))
#define KVEC_CHECK_LT(a, b) KVEC_CHECK((a) < (b))
#define KVEC_CHECK_LE(a, b) KVEC_CHECK((a) <= (b))
#define KVEC_CHECK_GT(a, b) KVEC_CHECK((a) > (b))
#define KVEC_CHECK_GE(a, b) KVEC_CHECK((a) >= (b))

#ifdef NDEBUG
#define KVEC_DCHECK(condition) KVEC_CHECK(true)
#else
#define KVEC_DCHECK(condition) KVEC_CHECK(condition)
#endif

