// Plain-text / CSV table rendering for the benchmark harness.
//
// Every figure- or table-reproducing binary prints its result through a
// `Table`, which renders an aligned text table to stdout and can also be
// saved as CSV (used by the sweep cache).
#pragma once

#include <string>
#include <vector>

namespace kvec {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string FormatDouble(double value, int precision = 3);

  // Renders an aligned text table.
  std::string ToText() const;

  // Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string ToCsv() const;

  // Parses a CSV produced by ToCsv(). Returns false on malformed input.
  static bool FromCsv(const std::string& csv, Table* table);

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kvec

