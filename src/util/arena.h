// Per-shard memory ownership for the serving stack (ROADMAP: bounded
// memory at millions of open keys).
//
// Three pieces, layered:
//
//  * CountingResource  — a pass-through std::pmr::memory_resource that
//    counts live bytes/blocks and high-water marks. Two of them bracket
//    the pool below so a shard can see both what its containers hold
//    (live) and what the pool holds from the OS (resident); the ratio is
//    the fragmentation signal that triggers compaction.
//  * ShardPool         — a std::pmr::unsynchronized_pool_resource wired
//    between two CountingResources. All long-lived per-key state of one
//    StreamServer shard (open-key map nodes, CorrelationTracker sessions,
//    OnlineClassifier key states) allocates from here, so eviction storms
//    recycle same-sized nodes inside the pool instead of hammering
//    malloc, and compaction can drop the whole pool in O(chunks).
//  * ScratchArena      — a monotonic bump allocator for batch-path
//    scratch (the encoder's per-microbatch panels). Reset() after every
//    drained microbatch returns the cursor to zero without freeing; the
//    arena plateaus at the largest batch ever encoded.
//
// Threading: none of these are thread-safe, deliberately. Each instance
// is owned by exactly one StreamServer shard, and all access runs on the
// shard's owner (the worker thread in worker mode, the caller under the
// shard mutex otherwise) — the same single-writer discipline that
// protects the shard itself (docs/SERVING.md "Memory management"). The
// lock-annotation story is therefore inherited from the owning seam:
// ShardedStreamServer's `server GUARDED_BY(mutex)` covers everything the
// server owns, including its pool. std::pmr::unsynchronized_pool_resource
// is the point: no internal locks to pay for on the hot path.
//
// kvec_lint.py's `pool-discipline` rule keeps raw std::pmr resource
// primitives (and malloc/free) out of the rest of the tree: per-key state
// goes through ShardPool/ScratchArena or it does not allocate.
#pragma once

#include <cstddef>
#include <memory_resource>  // kvec-lint: allow(pool-discipline) this IS the pool wrapper layer
#include <vector>

namespace kvec {

// Pass-through resource that meters its upstream. Single-owner; see the
// threading note above.
class CountingResource : public std::pmr::memory_resource {
 public:
  explicit CountingResource(std::pmr::memory_resource* upstream)
      : upstream_(upstream) {}

  size_t bytes_live() const { return bytes_live_; }
  size_t blocks_live() const { return blocks_live_; }
  size_t bytes_high_water() const { return bytes_high_water_; }
  size_t allocation_count() const { return allocation_count_; }

 protected:
  void* do_allocate(size_t bytes, size_t alignment) override {
    void* p = upstream_->allocate(bytes, alignment);
    bytes_live_ += bytes;
    ++blocks_live_;
    ++allocation_count_;
    if (bytes_live_ > bytes_high_water_) bytes_high_water_ = bytes_live_;
    return p;
  }

  void do_deallocate(void* p, size_t bytes, size_t alignment) override {
    bytes_live_ -= bytes;
    --blocks_live_;
    upstream_->deallocate(p, bytes, alignment);
  }

  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

 private:
  std::pmr::memory_resource* upstream_;
  size_t bytes_live_ = 0;
  size_t blocks_live_ = 0;
  size_t bytes_high_water_ = 0;
  size_t allocation_count_ = 0;
};

// One shard's pool for long-lived per-key state. Containers allocate via
// resource(); the pool batches their requests into large upstream chunks
// and never returns a chunk until the ShardPool is destroyed — which is
// exactly what compaction exploits: rebuild into a fresh ShardPool, drop
// the old one, and the fragmented chunks go back to the OS in one sweep.
class ShardPool {
 public:
  ShardPool();
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  // The resource pmr containers should be constructed with. Allocations
  // are metered on both sides of the pool.
  std::pmr::memory_resource* resource() { return &request_counter_; }

  // Bytes/chunks the pool holds from the global allocator. Monotone
  // within one pool's lifetime (the pool caches freed blocks).
  size_t bytes_resident() const { return upstream_counter_.bytes_live(); }
  size_t blocks_resident() const { return upstream_counter_.blocks_live(); }
  // Bytes containers currently have allocated (live objects only).
  size_t bytes_live() const { return request_counter_.bytes_live(); }

  // resident / live — grows past 1.0 as evictions leave dead space inside
  // pool chunks. The compaction heuristic compares this against
  // StreamServerConfig::compaction_fragmentation_threshold.
  double fragmentation() const {
    size_t live = bytes_live();
    return static_cast<double>(bytes_resident()) /
           static_cast<double>(live > 0 ? live : 1);
  }

 private:
  // Order matters: the pool outlives the request counter that fronts it,
  // and the upstream counter outlives the pool that drains into it.
  CountingResource upstream_counter_;
  // kvec-lint: allow-next(pool-discipline) the one sanctioned pool primitive
  std::pmr::unsynchronized_pool_resource pool_;
  CountingResource request_counter_;
};

// Monotonic bump allocator for microbatch scratch. Alloc() never frees;
// Reset() rewinds the cursor and (if the last cycle overflowed the main
// block) regrows the main block to the high-water mark so steady state is
// one block, zero allocations per batch.
class ScratchArena {
 public:
  ScratchArena() = default;

  // Aligned raw allocation, valid until the next Reset().
  void* Alloc(size_t bytes, size_t alignment = kAlignment);

  template <typename T>
  T* AllocArray(size_t count) {
    return static_cast<T*>(Alloc(count * sizeof(T), alignof(T)));
  }

  // Invalidates every pointer handed out since the last Reset().
  void Reset();

  // Largest total live at any point since construction (drives the
  // scratch_high_water stat).
  size_t high_water() const { return high_water_; }
  // Bytes currently reserved (main block + overflow blocks).
  size_t reserved_bytes() const;
  // Bytes handed out since the last Reset().
  size_t used_bytes() const { return used_; }

 private:
  static constexpr size_t kAlignment = 64;  // cache line; SIMD-friendly

  std::vector<char> main_;
  std::vector<std::vector<char>> overflow_;
  size_t cursor_ = 0;      // bump offset into main_
  size_t used_ = 0;        // total bytes (incl. overflow) since Reset()
  size_t high_water_ = 0;
};

}  // namespace kvec
