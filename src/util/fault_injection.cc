#include "util/fault_injection.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kvec {
namespace {

struct Registry {
  Mutex mutex;
  std::map<std::string, FaultInjection::Hook> hooks KVEC_GUARDED_BY(mutex);
  std::map<std::string, int64_t> fires KVEC_GUARDED_BY(mutex);
};

// Leaked on purpose: points may be crossed during static teardown.
Registry& GetRegistry() {
  // kvec-lint: allow-next(naked-new) leaked teardown-safe singleton
  static auto* registry = new Registry();
  return *registry;
}

// Mirrors hooks.size(); lets ArmedAny stay a single relaxed load.
std::atomic<int> g_armed_count{0};

}  // namespace

void FaultInjection::Arm(const std::string& point, Hook hook) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto [it, inserted] = registry.hooks.emplace(point, std::move(hook));
  if (!inserted) {
    it->second = std::move(hook);
  } else {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjection::Disarm(const std::string& point) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  if (registry.hooks.erase(point) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::DisarmAll() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  g_armed_count.fetch_sub(static_cast<int>(registry.hooks.size()),
                          std::memory_order_relaxed);
  registry.hooks.clear();
}

int64_t FaultInjection::FireCount(const std::string& point) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  auto it = registry.fires.find(point);
  return it == registry.fires.end() ? 0 : it->second;
}

bool FaultInjection::ArmedAny() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

bool FaultInjection::Fire(const char* point) {
  Hook hook;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    auto it = registry.hooks.find(point);
    if (it == registry.hooks.end()) return false;
    hook = it->second;  // copy: the hook runs outside the lock below
    ++registry.fires[point];
  }
  // Outside the lock: a hook that blocks (a stall) must not wedge
  // Arm/Disarm/Fire on other threads or points.
  return hook(point);
}

}  // namespace kvec
