// The paper's Synthetic-Traffic dataset (§V-A): flows with a known true
// halting position, used to evaluate the halting policy (Fig. 11).
//
// Two classes of flows. Each flow carries a `signal_length`-item
// discriminative "stop signal" — drawn from sharply class-specific token
// distributions — either at the very start (early-stop subdataset) or at the
// very end (late-stop subdataset); every other item is an uninformative
// "empty packet" drawn from a class-independent distribution. The true
// halting position of a flow is the item index at which the signal has been
// fully observed.
#pragma once

#include <string>
#include <vector>

#include "data/generator.h"
#include "data/types.h"
#include "util/rng.h"

namespace kvec {

struct StopSignalGeneratorConfig {
  std::string name = "synthetic-traffic";
  bool early_stop = true;  // false = late-stop subdataset
  int flow_length = 60;    // paper uses 100
  int signal_length = 10;  // paper intercepts the first ten packets
  int concurrency = 4;
  int num_size_buckets = 16;
  double signal_sharpness = 4.0;
  double mean_inter_arrival = 0.01;
  uint64_t profile_seed = 20240411;
};

class StopSignalGenerator : public EpisodeGenerator {
 public:
  explicit StopSignalGenerator(const StopSignalGeneratorConfig& config);

  const DatasetSpec& spec() const override { return spec_; }
  TangledSequence GenerateEpisode(Rng& rng) const override;

  const StopSignalGeneratorConfig& config() const { return config_; }

 private:
  StopSignalGeneratorConfig config_;
  DatasetSpec spec_;
  // Per class: token distribution of signal items.
  std::vector<std::vector<double>> signal_weights_;
  std::vector<double> empty_weights_;  // class-independent filler
};

}  // namespace kvec

