#include "data/movielens_generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kvec {
namespace {

std::vector<double> SoftmaxWeights(const std::vector<double>& logits) {
  double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> weights(logits.size());
  double total = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    weights[i] = std::exp(logits[i] - max_logit);
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

MovieLensGenerator::MovieLensGenerator(const MovieLensGeneratorConfig& config)
    : config_(config) {
  KVEC_CHECK_GE(config_.num_genres, 2);
  KVEC_CHECK_GE(config_.num_movie_buckets, 2);
  KVEC_CHECK_GE(config_.num_ratings, 2);
  KVEC_CHECK_GE(config_.concurrency, 1);

  spec_.name = config_.name;
  spec_.value_fields = {{"movie_bucket", config_.num_movie_buckets},
                        {"genre", config_.num_genres},
                        {"rating", config_.num_ratings}};
  spec_.session_field = 1;  // same-genre runs
  spec_.num_classes = 2;    // gender
  spec_.max_keys_per_episode = config_.concurrency;
  spec_.max_sequence_length =
      static_cast<int>(config_.avg_sequence_length * 4.0) + 16;
  spec_.max_episode_length = spec_.max_sequence_length * config_.concurrency;
  spec_.target_avg_length = config_.avg_sequence_length;
  spec_.target_avg_session_length =
      1.0 / std::max(1e-6, 1.0 - config_.session_continue_prob);

  Rng profile_rng(config_.profile_seed);
  // Shared base taste plus gender-specific offsets: the two genders overlap
  // (classification is nontrivial) but differ systematically.
  std::vector<double> base_logits(config_.num_genres);
  for (double& logit : base_logits) logit = profile_rng.NextGaussian();
  profiles_.resize(2);
  for (int g = 0; g < 2; ++g) {
    std::vector<double> logits(config_.num_genres);
    for (int i = 0; i < config_.num_genres; ++i) {
      logits[i] = base_logits[i] +
                  config_.preference_sharpness * profile_rng.NextGaussian();
    }
    profiles_[g].genre_weights = SoftmaxWeights(logits);
    profiles_[g].rating_means.resize(config_.num_genres);
    for (int i = 0; i < config_.num_genres; ++i) {
      profiles_[g].rating_means[i] = profile_rng.NextUniform(
          0.3 * config_.num_ratings, 0.9 * config_.num_ratings);
    }
  }
  genre_movies_.resize(config_.num_genres);
  for (int i = 0; i < config_.num_genres; ++i) {
    std::vector<double> logits(config_.num_movie_buckets);
    // Popularity within a genre is concentrated on a few buckets.
    for (double& logit : logits) logit = 2.0 * profile_rng.NextGaussian();
    genre_movies_[i] = SoftmaxWeights(logits);
  }
}

TangledSequence MovieLensGenerator::GenerateEpisode(Rng& rng) const {
  struct PendingItem {
    double time;
    Item item;
  };
  std::vector<PendingItem> pending;
  TangledSequence episode;

  for (int key = 0; key < config_.concurrency; ++key) {
    int gender = rng.NextInt(2);
    episode.labels[key] = gender;
    const GenderProfile& profile = profiles_[gender];

    int length = config_.min_sequence_length +
                 rng.NextPoisson(std::max(
                     0.0, config_.avg_sequence_length -
                              config_.min_sequence_length));
    length = std::min(length, spec_.max_sequence_length);

    double time = rng.NextUniform(0.0, config_.mean_inter_arrival * 4.0);
    int genre = rng.NextCategorical(profile.genre_weights);
    for (int i = 0; i < length; ++i) {
      // Session boundary: re-draw the genre, excluding the current one so
      // the run really ends (otherwise concentrated preferences merge runs
      // and the average session length overshoots Table I's 1.7).
      if (i > 0 && !rng.NextBernoulli(config_.session_continue_prob)) {
        std::vector<double> weights = profile.genre_weights;
        weights[genre] = 0.0;
        genre = rng.NextCategorical(weights);
      }
      int movie = rng.NextCategorical(genre_movies_[genre]);
      double mean = profile.rating_means[genre];
      int rating = static_cast<int>(
          std::clamp(mean + rng.NextGaussian(), 0.0,
                     static_cast<double>(config_.num_ratings - 1)));
      Item item;
      item.key = key;
      item.value = {movie, genre, rating};
      item.time = time;
      pending.push_back({time, std::move(item)});
      time += rng.NextUniform(0.2, 1.8) * config_.mean_inter_arrival;
    }
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingItem& a, const PendingItem& b) {
                     return a.time < b.time;
                   });
  episode.items.reserve(pending.size());
  for (PendingItem& p : pending) episode.items.push_back(std::move(p.item));
  return episode;
}

}  // namespace kvec
