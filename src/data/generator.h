// Episode-generator interface and dataset assembly.
//
// Generators replace the paper's real datasets (see DESIGN.md §1). Each
// generator produces independent tangled sequences; `GenerateDataset` draws
// disjoint episodes for the train/validation/test splits, which makes the
// splits key-disjoint (each episode has its own keys), mirroring the paper's
// key-based 8:1:1 split with no key overlap.
#pragma once

#include "data/types.h"
#include "util/rng.h"

namespace kvec {

class EpisodeGenerator {
 public:
  virtual ~EpisodeGenerator() = default;

  virtual const DatasetSpec& spec() const = 0;

  // One fresh tangled key-value sequence.
  virtual TangledSequence GenerateEpisode(Rng& rng) const = 0;
};

// Number of episodes per split, following the paper's 8:1:1 proportion by
// default.
struct SplitCounts {
  int train = 0;
  int validation = 0;
  int test = 0;

  static SplitCounts FromTotal(int total_episodes);
};

Dataset GenerateDataset(const EpisodeGenerator& generator,
                        const SplitCounts& counts, uint64_t seed);

}  // namespace kvec

