#include "data/perturb.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace kvec {
namespace {

// Rebuilds the per-key bookkeeping (true_halt_positions may reference item
// positions that no longer exist after a structural perturbation; clamp
// them to the new lengths).
void ClampTrueHalts(TangledSequence* episode) {
  if (episode->true_halt_positions.empty()) return;
  std::map<int, int> lengths;
  for (const Item& item : episode->items) ++lengths[item.key];
  for (auto& [key, position] : episode->true_halt_positions) {
    auto it = lengths.find(key);
    const int length = it == lengths.end() ? 1 : it->second;
    position = std::clamp(position, 1, length);
  }
}

}  // namespace

TangledSequence DropItems(const TangledSequence& episode, double drop_prob,
                          Rng& rng) {
  KVEC_CHECK(drop_prob >= 0.0 && drop_prob < 1.0);
  // Count per-key items so the final survivor of a key is kept.
  std::map<int, int> remaining;
  for (const Item& item : episode.items) ++remaining[item.key];
  std::map<int, int> kept;

  TangledSequence out;
  out.labels = episode.labels;
  out.true_halt_positions = episode.true_halt_positions;
  const int total = static_cast<int>(episode.items.size());
  for (int i = 0; i < total; ++i) {
    const Item& item = episode.items[i];
    --remaining[item.key];
    const bool last_chance = remaining[item.key] == 0 && kept[item.key] == 0;
    if (!last_chance && rng.NextBernoulli(drop_prob)) continue;
    out.items.push_back(item);
    ++kept[item.key];
  }
  ClampTrueHalts(&out);
  return out;
}

TangledSequence CorruptValues(const TangledSequence& episode, int field,
                              int vocab_size, double noise_prob, Rng& rng) {
  KVEC_CHECK_GE(field, 0);
  KVEC_CHECK_GT(vocab_size, 0);
  KVEC_CHECK(noise_prob >= 0.0 && noise_prob <= 1.0);
  TangledSequence out = episode;
  for (Item& item : out.items) {
    KVEC_CHECK_LT(field, static_cast<int>(item.value.size()));
    if (rng.NextBernoulli(noise_prob)) {
      item.value[field] = rng.NextInt(vocab_size);
    }
  }
  return out;
}

TangledSequence TruncateSequences(const TangledSequence& episode,
                                  int max_items) {
  KVEC_CHECK_GE(max_items, 1);
  TangledSequence out;
  out.labels = episode.labels;
  out.true_halt_positions = episode.true_halt_positions;
  std::map<int, int> seen;
  for (const Item& item : episode.items) {
    if (seen[item.key] >= max_items) continue;
    ++seen[item.key];
    out.items.push_back(item);
  }
  ClampTrueHalts(&out);
  return out;
}

TangledSequence JitterOrder(const TangledSequence& episode,
                            int max_displacement, Rng& rng) {
  KVEC_CHECK_GE(max_displacement, 0);
  TangledSequence out = episode;
  if (max_displacement == 0 || out.items.size() < 2) return out;
  // Fisher-Yates-style bounded swaps, then restore monotone timestamps by
  // sorting on the (jittered) position and reassigning the original sorted
  // time values.
  std::vector<double> times;
  times.reserve(out.items.size());
  for (const Item& item : out.items) times.push_back(item.time);
  const int total = static_cast<int>(out.items.size());
  for (int i = 0; i < total; ++i) {
    const int span = std::min(max_displacement, total - 1 - i);
    if (span == 0) continue;
    const int j = i + rng.NextInt(span + 1);
    std::swap(out.items[i], out.items[j]);
  }
  for (int i = 0; i < total; ++i) out.items[i].time = times[i];
  return out;
}

}  // namespace kvec
