// Perturbations of tangled sequences for robustness evaluation and failure
// injection.
//
// Real deployments of an early classifier see imperfect streams: dropped
// packets / missing events, corrupted value fields, truncated flows, and
// reordering from multi-path delivery. These transforms inject each fault
// mode into generated episodes so that tests and the ext_robustness bench
// can measure how gracefully KVEC and the baselines degrade. All transforms
// preserve the invariants `TangledSequence::Validate` checks (chronological
// order, label coverage, value arity) and are deterministic given the Rng.
#pragma once

#include <vector>

#include "data/types.h"
#include "util/rng.h"

namespace kvec {

// Independently deletes each item with probability `drop_prob`, but never
// drops the last remaining item of a key (a sequence must stay non-empty so
// its label remains classifiable).
TangledSequence DropItems(const TangledSequence& episode, double drop_prob,
                          Rng& rng);

// With probability `noise_prob` per item, replaces the value in field
// `field` with a uniform draw from [0, vocab_size). Other fields are
// untouched.
TangledSequence CorruptValues(const TangledSequence& episode, int field,
                              int vocab_size, double noise_prob, Rng& rng);

// Keeps only the first `max_items` items of every key-value sequence
// (flow cut short mid-capture). `max_items` >= 1.
TangledSequence TruncateSequences(const TangledSequence& episode,
                                  int max_items);

// Local reordering: each item may swap forward up to `max_displacement`
// stream positions (timestamps are re-sorted afterwards so chronological
// order holds). Models jitter in multi-path packet delivery.
TangledSequence JitterOrder(const TangledSequence& episode,
                            int max_displacement, Rng& rng);

// Applies a perturbation to every episode of a split.
template <typename Fn>
std::vector<TangledSequence> PerturbAll(
    const std::vector<TangledSequence>& episodes, Fn&& transform) {
  std::vector<TangledSequence> out;
  out.reserve(episodes.size());
  for (const TangledSequence& episode : episodes) {
    out.push_back(transform(episode));
  }
  return out;
}

}  // namespace kvec

