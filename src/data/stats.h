// Dataset statistics (Table I of the paper).
#pragma once

#include "data/types.h"

namespace kvec {

struct DatasetStats {
  int num_keys = 0;                  // total key-value sequences
  double avg_sequence_length = 0.0;  // avg |S_k|
  double avg_session_length = 0.0;
  int num_classes = 0;
  int num_episodes = 0;
  double avg_episode_length = 0.0;  // items per tangled sequence
};

// Statistics over all splits of `dataset`.
DatasetStats ComputeDatasetStats(const Dataset& dataset);

}  // namespace kvec

