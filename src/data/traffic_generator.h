// Synthetic encrypted-traffic workload generator.
//
// Stands in for USTC-TFC2016, Traffic-FG, and Traffic-App (see DESIGN.md §1).
// Each episode contains `concurrency` network flows (key = flow id) whose
// packets (value = (size bucket, direction)) interleave chronologically.
// Class-discriminative structure mirrors what the traffic-analysis
// literature reports and what the paper relies on:
//  * a short, highly discriminative "handshake" prefix (first packets are
//    the most informative, paper §V-A / ref [48]);
//  * class-specific packet-size distributions in the flow body;
//  * bursts — runs of same-direction packets — whose length statistics are
//    class-specific (sessions in the paper's terminology).
#pragma once

#include <string>
#include <vector>

#include "data/generator.h"
#include "data/types.h"
#include "util/rng.h"

namespace kvec {

struct TrafficGeneratorConfig {
  std::string name = "traffic";
  int num_classes = 12;
  int num_size_buckets = 16;
  int concurrency = 4;  // flows per episode (the paper's K)

  // Class co-occurrence: when > 0, each episode first samples this many
  // distinct classes and draws its flows from them, so concurrent flows
  // cluster by class — the structure the paper's value correlation feeds
  // on ("network flows with similar packets may result from the same
  // attack behavior", §I; one application opens several flows at once).
  // 0 = every flow's class is independent (no cross-flow class signal).
  int classes_per_episode = 0;

  int min_flow_length = 8;
  double avg_flow_length = 30.0;
  // Classes index < num_short_flow_classes get avg_flow_length / 3
  // (UDP-like application classes in Traffic-App).
  int num_short_flow_classes = 0;

  // Probability that the next packet keeps the current direction; per-class
  // jitter is added on top. Controls average burst (= session) length.
  double burst_continue_prob = 0.55;

  // How peaked the class-conditional size distributions are. Larger =
  // easier classification.
  double body_sharpness = 1.6;
  double handshake_sharpness = 3.0;
  int handshake_length = 5;

  double mean_inter_arrival = 0.01;  // seconds between packets of one flow

  // Seed from which the fixed per-class "protocol profiles" are derived;
  // independent of the episode stream so train/test share class structure.
  uint64_t profile_seed = 20240407;
};

class TrafficGenerator : public EpisodeGenerator {
 public:
  explicit TrafficGenerator(const TrafficGeneratorConfig& config);

  const DatasetSpec& spec() const override { return spec_; }
  TangledSequence GenerateEpisode(Rng& rng) const override;

  const TrafficGeneratorConfig& config() const { return config_; }

 private:
  struct ClassProfile {
    std::vector<double> handshake_weights;  // over size buckets
    std::vector<double> body_weights;       // over size buckets
    double burst_continue_prob = 0.5;
    double avg_length = 0.0;
  };

  TrafficGeneratorConfig config_;
  DatasetSpec spec_;
  std::vector<ClassProfile> profiles_;
};

}  // namespace kvec

