#include "data/presets.h"

#include <cstdlib>

#include "data/movielens_generator.h"
#include "data/stop_signal_generator.h"
#include "data/traffic_generator.h"
#include "util/check.h"

namespace kvec {
namespace {

// Multiplier applied to sequence lengths per scale.
double LengthFactor(ExperimentScale scale) {
  switch (scale) {
    case ExperimentScale::kTiny:
      return 0.4;
    case ExperimentScale::kSmall:
      return 0.7;
    case ExperimentScale::kFull:
      return 1.0;
  }
  return 1.0;
}

int TotalEpisodes(ExperimentScale scale) {
  switch (scale) {
    case ExperimentScale::kTiny:
      return 100;
    case ExperimentScale::kSmall:
      return 90;
    case ExperimentScale::kFull:
      return 250;
  }
  return 90;
}

int Concurrency(ExperimentScale scale) {
  switch (scale) {
    case ExperimentScale::kTiny:
      return 3;
    case ExperimentScale::kSmall:
      return 4;
    case ExperimentScale::kFull:
      return 5;
  }
  return 4;
}

}  // namespace

const char* PresetName(PresetId id) {
  switch (id) {
    case PresetId::kUstcTfc2016:
      return "USTC-TFC2016";
    case PresetId::kMovieLens1M:
      return "MovieLens-1M";
    case PresetId::kTrafficFg:
      return "Traffic-FG";
    case PresetId::kTrafficApp:
      return "Traffic-App";
    case PresetId::kSyntheticEarly:
      return "Synthetic-Traffic(early)";
    case PresetId::kSyntheticLate:
      return "Synthetic-Traffic(late)";
  }
  return "unknown";
}

const char* ScaleName(ExperimentScale scale) {
  switch (scale) {
    case ExperimentScale::kTiny:
      return "tiny";
    case ExperimentScale::kSmall:
      return "small";
    case ExperimentScale::kFull:
      return "full";
  }
  return "unknown";
}

bool ParseScale(const std::string& text, ExperimentScale* scale) {
  if (text == "tiny") {
    *scale = ExperimentScale::kTiny;
  } else if (text == "small") {
    *scale = ExperimentScale::kSmall;
  } else if (text == "full") {
    *scale = ExperimentScale::kFull;
  } else {
    return false;
  }
  return true;
}

ExperimentScale ScaleFromEnv() {
  const char* env = std::getenv("KVEC_BENCH_SCALE");
  // Default to the cheapest scale: the full figure suite then completes in
  // minutes on one core. Export KVEC_BENCH_SCALE=small|full for more
  // faithful curves.
  if (env == nullptr) return ExperimentScale::kTiny;
  ExperimentScale scale = ExperimentScale::kSmall;
  if (!ParseScale(env, &scale)) {
    KVEC_CHECK(false) << "KVEC_BENCH_SCALE must be tiny|small|full, got "
                      << env;
  }
  return scale;
}

std::unique_ptr<EpisodeGenerator> MakeGenerator(PresetId id,
                                                ExperimentScale scale) {
  const double factor = LengthFactor(scale);
  const int concurrency = Concurrency(scale);
  switch (id) {
    case PresetId::kUstcTfc2016: {
      TrafficGeneratorConfig config;
      config.name = PresetName(id);
      config.num_classes = 9;
      config.avg_flow_length = 31.2 * factor;
      config.min_flow_length = 10;  // the paper discards flows < 10 packets
      // Table I: avg session length 8.3 -> high burst persistence.
      config.burst_continue_prob = 0.88;
      config.concurrency = concurrency;
      // Concurrent flows cluster by class (an attack / application opens
      // several flows at once) — the cross-flow structure the paper's
      // value correlation exploits; see DESIGN.md §1.
      config.classes_per_episode = 2;
      config.profile_seed = 1601;
      return std::make_unique<TrafficGenerator>(config);
    }
    case PresetId::kMovieLens1M: {
      MovieLensGeneratorConfig config;
      config.name = PresetName(id);
      config.avg_sequence_length = 163.5 * factor * 0.35;  // cost driver
      config.min_sequence_length = 10;
      config.session_continue_prob = 0.41;  // avg session ~= 1.7
      config.concurrency = concurrency;
      config.profile_seed = 1701;
      return std::make_unique<MovieLensGenerator>(config);
    }
    case PresetId::kTrafficFg: {
      TrafficGeneratorConfig config;
      config.name = PresetName(id);
      config.num_classes = 12;
      config.avg_flow_length = 50.7 * factor * 0.7;
      config.min_flow_length = 8;
      config.burst_continue_prob = 0.58;  // avg session 2.4
      config.concurrency = concurrency;
      config.classes_per_episode = 2;  // class co-occurrence (DESIGN.md §1)
      config.profile_seed = 1801;
      return std::make_unique<TrafficGenerator>(config);
    }
    case PresetId::kTrafficApp: {
      TrafficGeneratorConfig config;
      config.name = PresetName(id);
      config.num_classes = 10;
      config.num_short_flow_classes = 4;  // UDP-like applications
      config.avg_flow_length = 57.5 * factor * 0.7;
      config.min_flow_length = 8;
      config.burst_continue_prob = 0.63;  // avg session 2.7
      config.concurrency = concurrency;
      config.classes_per_episode = 2;  // class co-occurrence (DESIGN.md §1)
      config.profile_seed = 1901;
      return std::make_unique<TrafficGenerator>(config);
    }
    case PresetId::kSyntheticEarly:
    case PresetId::kSyntheticLate: {
      StopSignalGeneratorConfig config;
      config.name = PresetName(id);
      config.early_stop = (id == PresetId::kSyntheticEarly);
      config.flow_length = static_cast<int>(100 * factor);
      config.signal_length = 10;
      config.concurrency = concurrency;
      config.profile_seed = 2001;
      return std::make_unique<StopSignalGenerator>(config);
    }
  }
  KVEC_CHECK(false) << "unknown preset";
  return nullptr;
}

SplitCounts PresetSplitCounts(PresetId id, ExperimentScale scale) {
  return SplitCounts::FromTotal(TotalEpisodes(scale));
}

Dataset MakePresetDataset(PresetId id, ExperimentScale scale, uint64_t seed) {
  std::unique_ptr<EpisodeGenerator> generator = MakeGenerator(id, scale);
  return GenerateDataset(*generator, PresetSplitCounts(id, scale), seed);
}

}  // namespace kvec
