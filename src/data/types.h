// Core data model: items, key-value sequences, tangled sequences, datasets.
//
// Terminology follows the paper (§III):
//  * An *item* ⟨k, v⟩ has a key field k and an l-dimensional value field v.
//    Values are categorical per dimension (continuous attributes such as
//    packet size are bucketed by the generators), so v is a vector of token
//    ids, one per value field.
//  * A *tangled key-value sequence* S is a chronologically ordered mixture of
//    items with different keys.
//  * The *key-value sequence* S_k ⊆ S is the subsequence sharing key k; each
//    S_k carries one class label.
//
// A training/evaluation corpus is a set of independent tangled sequences
// ("episodes"), each containing several concurrent key-value sequences.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace kvec {

struct Item {
  int key = 0;             // key id, local to the episode (0-based)
  std::vector<int> value;  // one token id per value field
  double time = 0.0;       // arrival timestamp (seconds, episode-relative)
};

// One tangled key-value sequence (an episode).
struct TangledSequence {
  std::vector<Item> items;    // chronological order
  std::map<int, int> labels;  // key -> class label

  // Ground-truth halting positions (key -> 1-based item index within S_k
  // after which the class is fully determined). Only populated by the
  // Synthetic-Traffic generator; empty elsewhere (paper §V-A).
  std::map<int, int> true_halt_positions;

  int num_keys() const { return static_cast<int>(labels.size()); }

  // Items of S_k as indices into `items`, in order.
  std::vector<int> KeyItemIndices(int key) const;

  // Length |S_k|.
  int KeyLength(int key) const;

  // Asserts chronological order, label coverage, and value-field arity.
  void Validate(int num_value_fields) const;
};

struct ValueField {
  std::string name;
  int vocab_size = 0;
};

// Static description of a dataset; everything the model needs to size its
// embedding tables, plus the Table-I-style targets the generator aims for.
struct DatasetSpec {
  std::string name;
  std::vector<ValueField> value_fields;
  int session_field = 0;  // index of the value field that defines sessions
  int num_classes = 0;
  int max_keys_per_episode = 0;     // membership-embedding vocabulary
  int max_sequence_length = 0;      // relative-position vocabulary
  int max_episode_length = 0;       // time-embedding vocabulary

  // Informational targets mirroring Table I of the paper.
  double target_avg_length = 0.0;
  double target_avg_session_length = 0.0;

  int num_value_fields() const { return static_cast<int>(value_fields.size()); }
};

struct Dataset {
  DatasetSpec spec;
  std::vector<TangledSequence> train;
  std::vector<TangledSequence> validation;
  std::vector<TangledSequence> test;
};

}  // namespace kvec

