// Session segmentation (paper §IV-B, "value correlation").
//
// A *session* is a maximal run of consecutive items of one key-value
// sequence sharing the same value in the session field (e.g., packets with
// the same transmission direction = a burst; movies of the same genre a
// user watched back-to-back).
#pragma once

#include <vector>

#include "data/types.h"

namespace kvec {

// For each item of `sequence` (by global item index), the 0-based session
// id *within its key sequence*. Session ids restart at 0 for every key.
std::vector<int> ComputeSessionIds(const TangledSequence& sequence,
                                   int session_field);

// Average session length over all keys of `sequence`.
double AverageSessionLength(const TangledSequence& sequence,
                            int session_field);

}  // namespace kvec

