#include "data/session.h"

#include <map>

#include "util/check.h"

namespace kvec {

std::vector<int> ComputeSessionIds(const TangledSequence& sequence,
                                   int session_field) {
  struct KeyState {
    int last_value = -1;
    int session_id = -1;
  };
  std::map<int, KeyState> states;
  std::vector<int> session_ids(sequence.items.size());
  for (size_t i = 0; i < sequence.items.size(); ++i) {
    const Item& item = sequence.items[i];
    KVEC_CHECK_LT(session_field, static_cast<int>(item.value.size()));
    KeyState& state = states[item.key];
    int value = item.value[session_field];
    if (state.session_id < 0 || value != state.last_value) {
      ++state.session_id;
      state.last_value = value;
    }
    session_ids[i] = state.session_id;
  }
  return session_ids;
}

double AverageSessionLength(const TangledSequence& sequence,
                            int session_field) {
  if (sequence.items.empty()) return 0.0;
  std::vector<int> session_ids = ComputeSessionIds(sequence, session_field);
  // Count sessions: one per (key, session id) pair.
  std::map<std::pair<int, int>, int> session_sizes;
  for (size_t i = 0; i < sequence.items.size(); ++i) {
    ++session_sizes[{sequence.items[i].key, session_ids[i]}];
  }
  return static_cast<double>(sequence.items.size()) /
         static_cast<double>(session_sizes.size());
}

}  // namespace kvec
