#include "data/generator.h"

#include <algorithm>

#include "util/check.h"

namespace kvec {

SplitCounts SplitCounts::FromTotal(int total_episodes) {
  KVEC_CHECK_GE(total_episodes, 10);
  SplitCounts counts;
  counts.validation = std::max(1, total_episodes / 10);
  counts.test = std::max(1, total_episodes / 10);
  counts.train = total_episodes - counts.validation - counts.test;
  return counts;
}

Dataset GenerateDataset(const EpisodeGenerator& generator,
                        const SplitCounts& counts, uint64_t seed) {
  KVEC_CHECK_GT(counts.train, 0);
  KVEC_CHECK_GT(counts.validation, 0);
  KVEC_CHECK_GT(counts.test, 0);
  Rng rng(seed);
  Dataset dataset;
  dataset.spec = generator.spec();
  auto fill = [&](std::vector<TangledSequence>* split, int count) {
    split->reserve(count);
    for (int i = 0; i < count; ++i) {
      TangledSequence episode = generator.GenerateEpisode(rng);
      episode.Validate(dataset.spec.num_value_fields());
      split->push_back(std::move(episode));
    }
  };
  fill(&dataset.train, counts.train);
  fill(&dataset.validation, counts.validation);
  fill(&dataset.test, counts.test);
  return dataset;
}

}  // namespace kvec
