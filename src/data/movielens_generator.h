// Synthetic user-movie rating stream, standing in for MovieLens-1M.
//
// Each episode interleaves the rating streams of `concurrency` users.
// An item is ⟨user, (movie bucket, genre, rating)⟩; the label is the user's
// gender (2 classes), predicted from genre-preference and rating-behaviour
// differences. Sessions are runs of same-genre ratings (paper §V-A), kept
// short (target ≈ 1.7) to match Table I.
#pragma once

#include <string>
#include <vector>

#include "data/generator.h"
#include "data/types.h"
#include "util/rng.h"

namespace kvec {

struct MovieLensGeneratorConfig {
  std::string name = "movielens";
  int num_genres = 18;
  int num_movie_buckets = 64;
  int num_ratings = 5;
  int concurrency = 4;

  int min_sequence_length = 8;
  double avg_sequence_length = 40.0;  // paper-scale is 163.5; see DESIGN.md

  // P(next rating keeps the current genre): average session length is
  // 1 / (1 - p); 0.4 targets Table I's 1.7.
  double session_continue_prob = 0.4;

  // How different the two genders' genre preferences are.
  double preference_sharpness = 1.2;

  double mean_inter_arrival = 1.0;
  uint64_t profile_seed = 20031001;
};

class MovieLensGenerator : public EpisodeGenerator {
 public:
  explicit MovieLensGenerator(const MovieLensGeneratorConfig& config);

  const DatasetSpec& spec() const override { return spec_; }
  TangledSequence GenerateEpisode(Rng& rng) const override;

  const MovieLensGeneratorConfig& config() const { return config_; }

 private:
  struct GenderProfile {
    std::vector<double> genre_weights;
    // Per-genre mean rating in [0, num_ratings).
    std::vector<double> rating_means;
  };

  MovieLensGeneratorConfig config_;
  DatasetSpec spec_;
  std::vector<GenderProfile> profiles_;          // size 2
  std::vector<std::vector<double>> genre_movies_;  // genre -> movie weights
};

}  // namespace kvec

