// CSV import/export of tangled key-value sequence corpora.
//
// This is the bring-your-own-data path: a downstream user converts real
// traces (packet captures, clickstreams, rating logs) into this CSV layout
// and trains KVEC on them without touching the generators.
//
// Layout (header required):
//   episode,key,time,label,v0,v1,...[,true_halt]
// One row per item, rows of one episode contiguous and time-ordered within
// the episode. `label` is the class of the item's key-value sequence and
// must be consistent for all items of one (episode, key). `true_halt` is
// optional ground truth for halting-position evaluation (0 = unknown).
#pragma once

#include <string>
#include <vector>

#include "data/types.h"

namespace kvec {

// Serialises episodes; every item must have `num_value_fields` values.
std::string TangledSequencesToCsv(const std::vector<TangledSequence>& episodes,
                                  int num_value_fields);

// Parses the CSV layout above. Returns false (and leaves `episodes`
// untouched) on malformed input: missing columns, ragged rows,
// non-numeric fields, inconsistent labels, or out-of-order times.
bool TangledSequencesFromCsv(const std::string& csv,
                             std::vector<TangledSequence>* episodes);

// File convenience wrappers; false on I/O or parse failure.
bool SaveTangledSequences(const std::vector<TangledSequence>& episodes,
                          int num_value_fields, const std::string& path);
bool LoadTangledSequences(const std::string& path,
                          std::vector<TangledSequence>* episodes);

}  // namespace kvec

