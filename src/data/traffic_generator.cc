#include "data/traffic_generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kvec {
namespace {

// Sharpened random multinomial over `size` outcomes: softmax of
// sharpness-scaled Gaussians. Distinct draws give distinct but overlapping
// class signatures.
std::vector<double> RandomMultinomial(int size, double sharpness, Rng& rng) {
  std::vector<double> weights(size);
  double max_logit = -1e30;
  std::vector<double> logits(size);
  for (int i = 0; i < size; ++i) {
    logits[i] = sharpness * rng.NextGaussian();
    max_logit = std::max(max_logit, logits[i]);
  }
  double total = 0.0;
  for (int i = 0; i < size; ++i) {
    weights[i] = std::exp(logits[i] - max_logit);
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

double NextExponential(Rng& rng, double mean) {
  double u = rng.NextDouble();
  while (u <= 0.0) u = rng.NextDouble();
  return -mean * std::log(u);
}

}  // namespace

TrafficGenerator::TrafficGenerator(const TrafficGeneratorConfig& config)
    : config_(config) {
  KVEC_CHECK_GE(config_.num_classes, 2);
  KVEC_CHECK_GE(config_.num_size_buckets, 2);
  KVEC_CHECK_GE(config_.concurrency, 1);
  KVEC_CHECK_GE(config_.min_flow_length, 2);
  KVEC_CHECK_GE(config_.avg_flow_length, config_.min_flow_length);
  KVEC_CHECK_LE(config_.num_short_flow_classes, config_.num_classes);

  spec_.name = config_.name;
  spec_.value_fields = {{"size_bucket", config_.num_size_buckets},
                        {"direction", 2}};
  spec_.session_field = 1;  // bursts = same-direction runs
  spec_.num_classes = config_.num_classes;
  spec_.max_keys_per_episode = config_.concurrency;
  spec_.max_sequence_length =
      static_cast<int>(config_.avg_flow_length * 4.0) + 16;
  spec_.max_episode_length =
      spec_.max_sequence_length * config_.concurrency;
  spec_.target_avg_length = config_.avg_flow_length;
  spec_.target_avg_session_length =
      1.0 / std::max(1e-6, 1.0 - config_.burst_continue_prob);

  Rng profile_rng(config_.profile_seed);
  profiles_.resize(config_.num_classes);
  for (int c = 0; c < config_.num_classes; ++c) {
    ClassProfile& profile = profiles_[c];
    profile.handshake_weights = RandomMultinomial(
        config_.num_size_buckets, config_.handshake_sharpness, profile_rng);
    profile.body_weights = RandomMultinomial(config_.num_size_buckets,
                                             config_.body_sharpness,
                                             profile_rng);
    profile.burst_continue_prob = std::clamp(
        config_.burst_continue_prob + 0.25 * profile_rng.NextGaussian() * 0.3,
        0.05, 0.95);
    profile.avg_length = config_.avg_flow_length;
    if (c < config_.num_short_flow_classes) profile.avg_length /= 3.0;
    profile.avg_length =
        std::max<double>(config_.min_flow_length, profile.avg_length);
  }
}

TangledSequence TrafficGenerator::GenerateEpisode(Rng& rng) const {
  struct PendingItem {
    double time;
    Item item;
  };
  std::vector<PendingItem> pending;
  TangledSequence episode;

  // Optional class co-occurrence: restrict this episode to a small set of
  // distinct classes (see TrafficGeneratorConfig::classes_per_episode).
  std::vector<int> episode_classes;
  if (config_.classes_per_episode > 0) {
    const int k = std::min(config_.classes_per_episode, config_.num_classes);
    while (static_cast<int>(episode_classes.size()) < k) {
      const int candidate = rng.NextInt(config_.num_classes);
      if (std::find(episode_classes.begin(), episode_classes.end(),
                    candidate) == episode_classes.end()) {
        episode_classes.push_back(candidate);
      }
    }
  }

  for (int key = 0; key < config_.concurrency; ++key) {
    int label = episode_classes.empty()
                    ? rng.NextInt(config_.num_classes)
                    : episode_classes[rng.NextInt(
                          static_cast<int>(episode_classes.size()))];
    episode.labels[key] = label;
    const ClassProfile& profile = profiles_[label];

    // Flow length: min + Poisson spread around the class mean.
    int length =
        config_.min_flow_length +
        rng.NextPoisson(
            std::max(0.0, profile.avg_length - config_.min_flow_length));
    length = std::min(length, spec_.max_sequence_length);

    // Flows start at staggered offsets so the stream is genuinely tangled.
    double time = rng.NextUniform(
        0.0, config_.mean_inter_arrival * profile.avg_length * 0.5);
    int direction = 0;  // client -> server first
    for (int i = 0; i < length; ++i) {
      const bool in_handshake = i < config_.handshake_length;
      const std::vector<double>& weights =
          in_handshake ? profile.handshake_weights : profile.body_weights;
      int size_bucket = rng.NextCategorical(weights);
      // Server->client packets skew one bucket larger (responses carry
      // payload), a weak direction/size coupling seen in real traces.
      if (direction == 1) {
        size_bucket = std::min(size_bucket + 1, config_.num_size_buckets - 1);
      }
      Item item;
      item.key = key;
      item.value = {size_bucket, direction};
      item.time = time;
      pending.push_back({time, std::move(item)});

      if (!rng.NextBernoulli(profile.burst_continue_prob)) {
        direction = 1 - direction;
      }
      time += NextExponential(rng, config_.mean_inter_arrival);
    }
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingItem& a, const PendingItem& b) {
                     return a.time < b.time;
                   });
  episode.items.reserve(pending.size());
  for (PendingItem& p : pending) episode.items.push_back(std::move(p.item));
  return episode;
}

}  // namespace kvec
