#include "data/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace kvec {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

bool ParseInt(const std::string& text, int* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *value = static_cast<int>(parsed);
  return true;
}

bool ParseDouble(const std::string& text, double* value) {
  if (text.empty()) return false;
  char* end = nullptr;
  double parsed = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *value = parsed;
  return true;
}

}  // namespace

std::string TangledSequencesToCsv(const std::vector<TangledSequence>& episodes,
                                  int num_value_fields) {
  std::ostringstream out;
  out << "episode,key,time,label";
  for (int v = 0; v < num_value_fields; ++v) out << ",v" << v;
  out << ",true_halt\n";
  for (size_t e = 0; e < episodes.size(); ++e) {
    const TangledSequence& episode = episodes[e];
    for (const Item& item : episode.items) {
      KVEC_CHECK_EQ(static_cast<int>(item.value.size()), num_value_fields);
      out << e << "," << item.key << "," << item.time << ","
          << episode.labels.at(item.key);
      for (int value : item.value) out << "," << value;
      auto truth = episode.true_halt_positions.find(item.key);
      out << ","
          << (truth == episode.true_halt_positions.end() ? 0 : truth->second)
          << "\n";
    }
  }
  return out.str();
}

bool TangledSequencesFromCsv(const std::string& csv,
                             std::vector<TangledSequence>* episodes) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) return false;
  std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 5 || header[0] != "episode" || header[1] != "key" ||
      header[2] != "time" || header[3] != "label") {
    return false;
  }
  bool has_true_halt = header.back() == "true_halt";
  const int num_value_fields =
      static_cast<int>(header.size()) - 4 - (has_true_halt ? 1 : 0);
  if (num_value_fields < 1) return false;

  std::vector<TangledSequence> parsed;
  int current_episode = -1;
  double last_time = 0.0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (static_cast<int>(fields.size()) !=
        4 + num_value_fields + (has_true_halt ? 1 : 0)) {
      return false;
    }
    int episode_id = 0, key = 0, label = 0;
    double time = 0.0;
    if (!ParseInt(fields[0], &episode_id) || !ParseInt(fields[1], &key) ||
        !ParseDouble(fields[2], &time) || !ParseInt(fields[3], &label)) {
      return false;
    }
    if (episode_id != current_episode) {
      if (episode_id != current_episode + 1) return false;  // contiguous
      parsed.emplace_back();
      current_episode = episode_id;
      last_time = time;
    }
    if (time < last_time) return false;  // time-ordered within episode
    last_time = time;

    Item item;
    item.key = key;
    item.time = time;
    item.value.resize(num_value_fields);
    for (int v = 0; v < num_value_fields; ++v) {
      if (!ParseInt(fields[4 + v], &item.value[v])) return false;
    }
    TangledSequence& episode = parsed.back();
    auto [it, inserted] = episode.labels.emplace(key, label);
    if (!inserted && it->second != label) return false;  // inconsistent
    if (has_true_halt) {
      int truth = 0;
      if (!ParseInt(fields.back(), &truth)) return false;
      if (truth > 0) episode.true_halt_positions[key] = truth;
    }
    episode.items.push_back(std::move(item));
  }
  if (parsed.empty()) return false;
  *episodes = std::move(parsed);
  return true;
}

bool SaveTangledSequences(const std::vector<TangledSequence>& episodes,
                          int num_value_fields, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << TangledSequencesToCsv(episodes, num_value_fields);
  return static_cast<bool>(out);
}

bool LoadTangledSequences(const std::string& path,
                          std::vector<TangledSequence>* episodes) {
  std::ifstream in(path);
  if (!in) return false;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return TangledSequencesFromCsv(contents, episodes);
}

}  // namespace kvec
