#include "data/types.h"

#include "util/check.h"

namespace kvec {

std::vector<int> TangledSequence::KeyItemIndices(int key) const {
  std::vector<int> indices;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].key == key) indices.push_back(static_cast<int>(i));
  }
  return indices;
}

int TangledSequence::KeyLength(int key) const {
  int length = 0;
  for (const Item& item : items) {
    if (item.key == key) ++length;
  }
  return length;
}

void TangledSequence::Validate(int num_value_fields) const {
  double previous_time = -1.0;
  for (const Item& item : items) {
    KVEC_CHECK_GE(item.time, previous_time) << "items out of order";
    previous_time = item.time;
    KVEC_CHECK_EQ(static_cast<int>(item.value.size()), num_value_fields)
        << "value arity mismatch";
    KVEC_CHECK(labels.count(item.key)) << "item with unlabeled key";
  }
}

}  // namespace kvec
