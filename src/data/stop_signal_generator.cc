#include "data/stop_signal_generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kvec {
namespace {

std::vector<double> SharpMultinomial(int size, double sharpness, Rng& rng) {
  std::vector<double> logits(size);
  for (double& logit : logits) logit = sharpness * rng.NextGaussian();
  double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> weights(size);
  double total = 0.0;
  for (int i = 0; i < size; ++i) {
    weights[i] = std::exp(logits[i] - max_logit);
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

StopSignalGenerator::StopSignalGenerator(
    const StopSignalGeneratorConfig& config)
    : config_(config) {
  KVEC_CHECK_GT(config_.signal_length, 0);
  KVEC_CHECK_GE(config_.flow_length, config_.signal_length);
  KVEC_CHECK_GE(config_.concurrency, 1);

  spec_.name = config_.name;
  spec_.value_fields = {{"size_bucket", config_.num_size_buckets},
                        {"direction", 2}};
  spec_.session_field = 1;
  spec_.num_classes = 2;
  spec_.max_keys_per_episode = config_.concurrency;
  spec_.max_sequence_length = config_.flow_length;
  spec_.max_episode_length = config_.flow_length * config_.concurrency;
  spec_.target_avg_length = config_.flow_length;
  spec_.target_avg_session_length = 2.1;  // Table I

  Rng profile_rng(config_.profile_seed);
  signal_weights_.resize(2);
  for (int c = 0; c < 2; ++c) {
    signal_weights_[c] = SharpMultinomial(config_.num_size_buckets,
                                          config_.signal_sharpness,
                                          profile_rng);
  }
  // Filler items are drawn uniformly: they carry no class information.
  empty_weights_.assign(config_.num_size_buckets,
                        1.0 / config_.num_size_buckets);
}

TangledSequence StopSignalGenerator::GenerateEpisode(Rng& rng) const {
  struct PendingItem {
    double time;
    Item item;
  };
  std::vector<PendingItem> pending;
  TangledSequence episode;

  for (int key = 0; key < config_.concurrency; ++key) {
    int label = rng.NextInt(2);
    episode.labels[key] = label;

    const int signal_begin =
        config_.early_stop ? 0 : config_.flow_length - config_.signal_length;
    const int signal_end = signal_begin + config_.signal_length;
    // The class is determined once the last signal item is seen.
    episode.true_halt_positions[key] = signal_end;

    double time = rng.NextUniform(0.0, config_.mean_inter_arrival * 5.0);
    int direction = 0;
    for (int i = 0; i < config_.flow_length; ++i) {
      const bool in_signal = i >= signal_begin && i < signal_end;
      int size_bucket = rng.NextCategorical(in_signal ? signal_weights_[label]
                                                      : empty_weights_);
      // Signal items carry a class-specific direction rhythm; filler
      // alternates slowly and identically for both classes.
      if (in_signal) {
        direction = (label == 0) ? (i % 2) : ((i / 2) % 2);
      } else if (rng.NextBernoulli(0.5)) {
        direction = 1 - direction;
      }
      Item item;
      item.key = key;
      item.value = {size_bucket, direction};
      item.time = time;
      pending.push_back({time, std::move(item)});
      time += rng.NextUniform(0.5, 1.5) * config_.mean_inter_arrival;
    }
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingItem& a, const PendingItem& b) {
                     return a.time < b.time;
                   });
  episode.items.reserve(pending.size());
  for (PendingItem& p : pending) episode.items.push_back(std::move(p.item));
  return episode;
}

}  // namespace kvec
