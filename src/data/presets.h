// Dataset presets mirroring the paper's five datasets (Table I), with an
// experiment-scale knob trading runtime for fidelity on a single CPU core.
#pragma once

#include <memory>
#include <string>

#include "data/generator.h"
#include "data/types.h"

namespace kvec {

enum class PresetId {
  kUstcTfc2016,     // 9-class malware/benign traffic
  kMovieLens1M,     // 2-class (gender) rating stream
  kTrafficFg,       // 12-class fine-grained service traffic
  kTrafficApp,      // 10-class app traffic (4 UDP-like short-flow classes)
  kSyntheticEarly,  // Synthetic-Traffic, early-stop subdataset
  kSyntheticLate,   // Synthetic-Traffic, late-stop subdataset
};

// Runtime/fidelity trade-off. Sequence lengths, episode counts and episode
// concurrency grow with scale; class counts and structure are identical.
enum class ExperimentScale { kTiny, kSmall, kFull };

const char* PresetName(PresetId id);
const char* ScaleName(ExperimentScale scale);

// Parses "tiny"/"small"/"full"; returns false on anything else.
bool ParseScale(const std::string& text, ExperimentScale* scale);

// Reads KVEC_BENCH_SCALE from the environment (default kSmall).
ExperimentScale ScaleFromEnv();

std::unique_ptr<EpisodeGenerator> MakeGenerator(PresetId id,
                                                ExperimentScale scale);

// Episode counts per split at this scale (8:1:1).
SplitCounts PresetSplitCounts(PresetId id, ExperimentScale scale);

// Generator + split + assembly in one call.
Dataset MakePresetDataset(PresetId id, ExperimentScale scale, uint64_t seed);

}  // namespace kvec

