#include "data/stats.h"

#include <set>

#include "data/session.h"

namespace kvec {

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_classes = dataset.spec.num_classes;
  int64_t total_items = 0;
  double session_length_sum = 0.0;
  int session_sequences = 0;
  auto accumulate = [&](const std::vector<TangledSequence>& split) {
    for (const TangledSequence& episode : split) {
      stats.num_episodes += 1;
      stats.num_keys += episode.num_keys();
      total_items += static_cast<int64_t>(episode.items.size());
      session_length_sum +=
          AverageSessionLength(episode, dataset.spec.session_field);
      session_sequences += 1;
    }
  };
  accumulate(dataset.train);
  accumulate(dataset.validation);
  accumulate(dataset.test);
  if (stats.num_keys > 0) {
    stats.avg_sequence_length =
        static_cast<double>(total_items) / stats.num_keys;
  }
  if (session_sequences > 0) {
    stats.avg_session_length = session_length_sum / session_sequences;
  }
  if (stats.num_episodes > 0) {
    stats.avg_episode_length =
        static_cast<double>(total_items) / stats.num_episodes;
  }
  return stats;
}

}  // namespace kvec
