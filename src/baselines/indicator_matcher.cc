#include "baselines/indicator_matcher.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/check.h"

namespace kvec {
namespace {

// splitmix64-style mixing for n-gram keys.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct LabeledTokenSequence {
  std::vector<uint64_t> tokens;
  int label = 0;
  int length = 0;  // full |S_k|, before the max_prefix truncation
};

}  // namespace

IndicatorMatcher::IndicatorMatcher(const DatasetSpec& spec,
                                   const IndicatorMatcherConfig& config)
    : spec_(spec), config_(config) {
  KVEC_CHECK_GT(config_.max_ngram, 0);
  KVEC_CHECK_GT(config_.max_prefix, 0);
  KVEC_CHECK_GT(config_.min_support, 0);
  KVEC_CHECK(config_.precision_threshold > 0.0f &&
             config_.precision_threshold <= 1.0f);
  KVEC_CHECK_GT(spec_.num_classes, 0);
}

uint64_t IndicatorMatcher::ItemToken(const Item& item) const {
  uint64_t token = 0;
  bool overflow = false;
  for (size_t f = 0; f < item.value.size(); ++f) {
    const uint64_t radix =
        f < spec_.value_fields.size()
            ? static_cast<uint64_t>(spec_.value_fields[f].vocab_size)
            : 1ULL << 20;
    if (token > (1ULL << 40)) overflow = true;
    token = token * radix + static_cast<uint64_t>(item.value[f]);
  }
  return overflow ? Mix(token) : token;
}

uint64_t IndicatorMatcher::NgramKey(const std::vector<uint64_t>& window,
                                    int begin, int length) {
  // Chain-mix the tokens; include the length so that e.g. the unigram (a)
  // and bigram (a, a) cannot collide trivially.
  uint64_t key = Mix(static_cast<uint64_t>(length));
  for (int i = begin; i < begin + length; ++i) {
    key = Mix(key ^ window[i]);
  }
  return key;
}

void IndicatorMatcher::Fit(const std::vector<TangledSequence>& episodes) {
  candidates_.clear();
  num_indicators_ = 0;

  // Collect token sequences (truncated to the mining prefix).
  std::vector<LabeledTokenSequence> sequences;
  std::vector<int> class_totals(spec_.num_classes, 0);
  for (const TangledSequence& episode : episodes) {
    std::map<int, LabeledTokenSequence> by_key;
    for (const Item& item : episode.items) {
      LabeledTokenSequence& sequence = by_key[item.key];
      ++sequence.length;
      if (static_cast<int>(sequence.tokens.size()) < config_.max_prefix) {
        sequence.tokens.push_back(ItemToken(item));
      }
    }
    for (auto& [key, sequence] : by_key) {
      sequence.label = episode.labels.at(key);
      ++class_totals[sequence.label];
      sequences.push_back(std::move(sequence));
    }
  }
  KVEC_CHECK(!sequences.empty());
  majority_class_ = static_cast<int>(
      std::max_element(class_totals.begin(), class_totals.end()) -
      class_totals.begin());
  majority_fraction_ = static_cast<double>(class_totals[majority_class_]) /
                       static_cast<double>(sequences.size());

  // Count, per n-gram, in how many sequences of each class it occurs
  // (each distinct n-gram once per sequence).
  for (const LabeledTokenSequence& sequence : sequences) {
    std::unordered_set<uint64_t> seen;
    const int length = static_cast<int>(sequence.tokens.size());
    for (int n = 1; n <= config_.max_ngram; ++n) {
      for (int begin = 0; begin + n <= length; ++begin) {
        seen.insert(NgramKey(sequence.tokens, begin, n));
      }
    }
    for (uint64_t key : seen) {
      Candidate& candidate = candidates_[key];
      if (candidate.class_counts.empty()) {
        candidate.class_counts.assign(spec_.num_classes, 0);
      }
      ++candidate.class_counts[sequence.label];
    }
  }

  // Threshold into indicators.
  for (auto& [key, candidate] : candidates_) {
    int total = 0, best = 0, best_class = 0;
    for (int c = 0; c < spec_.num_classes; ++c) {
      total += candidate.class_counts[c];
      if (candidate.class_counts[c] > best) {
        best = candidate.class_counts[c];
        best_class = c;
      }
    }
    if (total < config_.min_support) continue;
    const float precision = static_cast<float>(best) / total;
    if (precision < config_.precision_threshold) continue;
    candidate.indicator = true;
    candidate.predicted_class = best_class;
    candidate.precision = precision;
    ++num_indicators_;
  }
}

EvaluationResult IndicatorMatcher::Evaluate(
    const std::vector<TangledSequence>& episodes) const {
  EvaluationResult result;
  for (const TangledSequence& episode : episodes) {
    struct Rollout {
      std::vector<uint64_t> tokens;
      int observed = 0;
      int length = 0;
      bool halted = false;
      int predicted = -1;
      int halted_at = 0;
      double confidence = 0.0;
    };
    std::map<int, Rollout> rollouts;
    for (const Item& item : episode.items) {
      Rollout& rollout = rollouts[item.key];
      ++rollout.length;
      if (rollout.halted) continue;
      rollout.tokens.push_back(ItemToken(item));
      ++rollout.observed;
      // Check the n-grams ending at this item, longest (most specific)
      // first; fire the best-precision match.
      const int t = static_cast<int>(rollout.tokens.size());
      const Candidate* best = nullptr;
      for (int n = std::min(config_.max_ngram, t); n >= 1; --n) {
        auto it = candidates_.find(NgramKey(rollout.tokens, t - n, n));
        if (it == candidates_.end() || !it->second.indicator) continue;
        if (best == nullptr || it->second.precision > best->precision) {
          best = &it->second;
        }
      }
      if (best != nullptr) {
        rollout.halted = true;
        rollout.predicted = best->predicted_class;
        rollout.halted_at = rollout.observed;
        rollout.confidence = best->precision;
      }
    }
    for (const auto& [key, rollout] : rollouts) {
      if (rollout.length == 0) continue;
      PredictionRecord record;
      record.true_label = episode.labels.at(key);
      record.predicted_label =
          rollout.halted ? rollout.predicted : majority_class_;
      record.observed_items =
          rollout.halted ? rollout.halted_at : rollout.length;
      record.sequence_length = rollout.length;
      record.confidence =
          rollout.halted ? rollout.confidence : majority_fraction_;
      result.records.push_back(record);

      HaltingRecord halt;
      halt.key = key;
      halt.halt_position = record.observed_items;
      halt.sequence_length = rollout.length;
      auto truth = episode.true_halt_positions.find(key);
      halt.true_halt_position =
          truth == episode.true_halt_positions.end() ? 0 : truth->second;
      result.halts.push_back(halt);
    }
  }
  result.summary = ::kvec::Evaluate(result.records, spec_.num_classes);
  return result;
}

}  // namespace kvec
