// A prefix-based early classifier in the style of ECTS / Mori et al.
// (Related Work, "prefix based approaches").
//
// A bank of per-prefix-length softmax-regression classifiers is trained on
// bag-of-values features of sequence prefixes: classifier_t sees the first
// t items of every training sequence. At test time the sequence is streamed
// and classified after every arrival; it halts when the predicted label has
// been *stable* for `stability` consecutive steps (the classic "the classes
// are discriminated from here on" stopping rule). The stability requirement
// is the earliness-accuracy hyper-parameter: 1 halts at the first
// prediction, larger values wait for agreement.
//
// Like the paper's SRN baselines this treats each key-value sequence
// independently — it cannot use inter-sequence correlations — but unlike
// them it involves no deep representation, making it the "classical
// methods" reference point in the extended comparison bench
// (ext_method_comparison).
#pragma once

#include <vector>

#include "core/trainer.h"
#include "data/types.h"
#include "util/rng.h"

namespace kvec {

struct PrefixEctsConfig {
  // Prefix lengths 1..max_prefix get their own classifier; longer prefixes
  // reuse the last one.
  int max_prefix = 24;
  // Consecutive agreeing predictions required before halting.
  int stability = 3;
  // Softmax-regression training.
  int epochs = 12;
  float learning_rate = 0.25f;
  float l2 = 1e-4f;
  uint64_t seed = 13;
};

class PrefixEcts {
 public:
  // `spec` provides the value-field vocabularies that size the feature
  // space (one count per token per field, normalised by prefix length).
  PrefixEcts(const DatasetSpec& spec, const PrefixEctsConfig& config);

  // Trains the classifier bank on all key-value sequences in `episodes`.
  void Fit(const std::vector<TangledSequence>& episodes);

  // Streams every key-value sequence in `episodes` through the stability
  // halting rule and scores the outcome.
  EvaluationResult Evaluate(const std::vector<TangledSequence>& episodes) const;

  // Predicted class for an explicit prefix (items of one sequence).
  int Classify(const std::vector<const Item*>& prefix) const;

  int feature_dim() const { return feature_dim_; }
  const PrefixEctsConfig& config() const { return config_; }

 private:
  // One multinomial logistic regression: logits = W x + b.
  struct SoftmaxRegression {
    std::vector<float> weight;  // [num_classes, feature_dim] row-major
    std::vector<float> bias;    // [num_classes]
  };

  void FeaturizePrefix(const std::vector<const Item*>& prefix,
                       std::vector<float>* features) const;
  int ClassifierIndex(int prefix_length) const;
  // Predicted class; when `confidence` is non-null it receives the softmax
  // probability of that class.
  int Predict(const SoftmaxRegression& model,
              const std::vector<float>& features,
              double* confidence = nullptr) const;
  void TrainStep(SoftmaxRegression* model, const std::vector<float>& features,
                 int label, float learning_rate);

  DatasetSpec spec_;
  PrefixEctsConfig config_;
  int feature_dim_ = 0;
  std::vector<int> field_offsets_;  // feature offset of each value field
  std::vector<SoftmaxRegression> classifiers_;  // [max_prefix]
};

}  // namespace kvec

