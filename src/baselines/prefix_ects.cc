#include "baselines/prefix_ects.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "util/check.h"

namespace kvec {
namespace {

// Gathers every key-value sequence of every episode as ordered item
// pointers plus its label.
struct LabeledSequence {
  std::vector<const Item*> items;
  int label = 0;
};

std::vector<LabeledSequence> CollectSequences(
    const std::vector<TangledSequence>& episodes) {
  std::vector<LabeledSequence> sequences;
  for (const TangledSequence& episode : episodes) {
    std::map<int, LabeledSequence> by_key;
    for (const Item& item : episode.items) {
      by_key[item.key].items.push_back(&item);
    }
    for (auto& [key, sequence] : by_key) {
      sequence.label = episode.labels.at(key);
      sequences.push_back(std::move(sequence));
    }
  }
  return sequences;
}

}  // namespace

PrefixEcts::PrefixEcts(const DatasetSpec& spec, const PrefixEctsConfig& config)
    : spec_(spec), config_(config) {
  KVEC_CHECK_GT(config_.max_prefix, 0);
  KVEC_CHECK_GT(config_.stability, 0);
  KVEC_CHECK_GT(spec_.num_classes, 0);
  field_offsets_.reserve(spec_.value_fields.size());
  for (const ValueField& field : spec_.value_fields) {
    field_offsets_.push_back(feature_dim_);
    feature_dim_ += field.vocab_size;
  }
  KVEC_CHECK_GT(feature_dim_, 0) << "dataset has no value fields";
  classifiers_.resize(config_.max_prefix);
  for (SoftmaxRegression& model : classifiers_) {
    model.weight.assign(
        static_cast<size_t>(spec_.num_classes) * feature_dim_, 0.0f);
    model.bias.assign(spec_.num_classes, 0.0f);
  }
}

void PrefixEcts::FeaturizePrefix(const std::vector<const Item*>& prefix,
                                 std::vector<float>* features) const {
  features->assign(feature_dim_, 0.0f);
  if (prefix.empty()) return;
  const float unit = 1.0f / static_cast<float>(prefix.size());
  for (const Item* item : prefix) {
    KVEC_DCHECK(static_cast<int>(item->value.size()) ==
                static_cast<int>(field_offsets_.size()));
    for (size_t f = 0; f < field_offsets_.size(); ++f) {
      const int token = item->value[f];
      KVEC_DCHECK(token >= 0 && token < spec_.value_fields[f].vocab_size);
      (*features)[field_offsets_[f] + token] += unit;
    }
  }
}

int PrefixEcts::ClassifierIndex(int prefix_length) const {
  return std::min(prefix_length, config_.max_prefix) - 1;
}

int PrefixEcts::Predict(const SoftmaxRegression& model,
                        const std::vector<float>& features,
                        double* confidence) const {
  int best = 0;
  float best_score = -1e30f;
  std::vector<float> scores(spec_.num_classes);
  for (int c = 0; c < spec_.num_classes; ++c) {
    float score = model.bias[c];
    const float* row = model.weight.data() + static_cast<size_t>(c) *
                                                 feature_dim_;
    for (int d = 0; d < feature_dim_; ++d) score += row[d] * features[d];
    scores[c] = score;
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  if (confidence != nullptr) {
    double total = 0.0;
    for (float score : scores) total += std::exp(score - best_score);
    *confidence = 1.0 / total;
  }
  return best;
}

void PrefixEcts::TrainStep(SoftmaxRegression* model,
                           const std::vector<float>& features, int label,
                           float learning_rate) {
  // One softmax-regression SGD step: grad = (p - onehot(label)) x^T.
  std::vector<float> logits(spec_.num_classes);
  float max_logit = -1e30f;
  for (int c = 0; c < spec_.num_classes; ++c) {
    float score = model->bias[c];
    const float* row = model->weight.data() + static_cast<size_t>(c) *
                                                  feature_dim_;
    for (int d = 0; d < feature_dim_; ++d) score += row[d] * features[d];
    logits[c] = score;
    max_logit = std::max(max_logit, score);
  }
  float total = 0.0f;
  for (float& logit : logits) {
    logit = std::exp(logit - max_logit);
    total += logit;
  }
  for (int c = 0; c < spec_.num_classes; ++c) {
    const float p = logits[c] / total;
    const float error = p - (c == label ? 1.0f : 0.0f);
    float* row = model->weight.data() + static_cast<size_t>(c) * feature_dim_;
    for (int d = 0; d < feature_dim_; ++d) {
      if (features[d] == 0.0f && config_.l2 == 0.0f) continue;
      row[d] -= learning_rate * (error * features[d] + config_.l2 * row[d]);
    }
    model->bias[c] -= learning_rate * error;
  }
}

void PrefixEcts::Fit(const std::vector<TangledSequence>& episodes) {
  std::vector<LabeledSequence> sequences = CollectSequences(episodes);
  KVEC_CHECK(!sequences.empty());
  Rng rng(config_.seed);
  std::vector<int> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<float> features;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Mild 1/sqrt decay keeps late epochs from thrashing the small model.
    const float learning_rate =
        config_.learning_rate / std::sqrt(1.0f + static_cast<float>(epoch));
    rng.Shuffle(order);
    for (int index : order) {
      const LabeledSequence& sequence = sequences[index];
      std::vector<const Item*> prefix;
      const int limit = std::min<int>(
          static_cast<int>(sequence.items.size()), config_.max_prefix);
      for (int t = 0; t < limit; ++t) {
        prefix.push_back(sequence.items[t]);
        FeaturizePrefix(prefix, &features);
        TrainStep(&classifiers_[ClassifierIndex(t + 1)], features,
                  sequence.label, learning_rate);
      }
    }
  }
}

int PrefixEcts::Classify(const std::vector<const Item*>& prefix) const {
  KVEC_CHECK(!prefix.empty());
  std::vector<float> features;
  FeaturizePrefix(prefix, &features);
  const int index = ClassifierIndex(static_cast<int>(prefix.size()));
  return Predict(classifiers_[index], features);
}

EvaluationResult PrefixEcts::Evaluate(
    const std::vector<TangledSequence>& episodes) const {
  EvaluationResult result;
  std::vector<float> features;
  for (const TangledSequence& episode : episodes) {
    std::map<int, LabeledSequence> by_key;
    for (const Item& item : episode.items) {
      by_key[item.key].items.push_back(&item);
    }
    for (const auto& [key, sequence] : by_key) {
      if (sequence.items.empty()) continue;
      const int length = static_cast<int>(sequence.items.size());
      int last_prediction = -1;
      int streak = 0;
      int halted_at = length;  // default: forced halt at the end
      int predicted = -1;
      double confidence = 0.0;
      std::vector<const Item*> prefix;
      for (int t = 0; t < length; ++t) {
        prefix.push_back(sequence.items[t]);
        FeaturizePrefix(prefix, &features);
        const int prediction = Predict(classifiers_[ClassifierIndex(t + 1)],
                                       features, &confidence);
        streak = (prediction == last_prediction) ? streak + 1 : 1;
        last_prediction = prediction;
        if (streak >= config_.stability) {
          halted_at = t + 1;
          predicted = prediction;
          break;
        }
      }
      if (predicted < 0) predicted = last_prediction;

      PredictionRecord record;
      record.true_label = episode.labels.at(key);
      record.predicted_label = predicted;
      record.observed_items = halted_at;
      record.sequence_length = length;
      record.confidence = confidence;
      result.records.push_back(record);

      HaltingRecord halt;
      halt.key = key;
      halt.halt_position = halted_at;
      halt.sequence_length = length;
      auto truth = episode.true_halt_positions.find(key);
      halt.true_halt_position =
          truth == episode.true_halt_positions.end() ? 0 : truth->second;
      result.halts.push_back(halt);
    }
  }
  result.summary = ::kvec::Evaluate(result.records, spec_.num_classes);
  return result;
}

}  // namespace kvec
