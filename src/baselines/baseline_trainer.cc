#include "baselines/baseline_trainer.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {
namespace {

float ClampProbability(float p) { return std::clamp(p, 1e-4f, 1.0f - 1e-4f); }

// Streams one episode through the baseline's representation model,
// producing the per-step sequence representation for each key. The
// callback receives (key, step representation, is_last_item_of_key).
template <typename Callback>
void StreamRepresentations(const BaselineModel& model,
                           const TangledSequence& episode,
                           const EpisodeIndex& index, Rng& rng, bool training,
                           const std::map<int, bool>& skip_key,
                           Callback&& on_step) {
  const int total = static_cast<int>(episode.items.size());
  std::map<int, int> remaining;
  for (const auto& [key, label] : episode.labels) {
    remaining[key] = episode.KeyLength(key);
  }
  if (model.config().representation == RepresentationKind::kTransformer) {
    EncodeResult encode =
        model.encoder()->Forward(episode, index, rng, training);
    for (int t = 0; t < total; ++t) {
      const int key = episode.items[t].key;
      int& left = remaining[key];
      --left;
      auto it = skip_key.find(key);
      if (it != skip_key.end() && it->second) continue;
      on_step(key, ops::SliceRow(encode.embeddings, t), left == 0);
    }
  } else {
    Tensor inputs = model.input_embedding()->Forward(episode, index);
    std::map<int, LstmState> states;
    for (int t = 0; t < total; ++t) {
      const int key = episode.items[t].key;
      int& left = remaining[key];
      --left;
      auto it = skip_key.find(key);
      if (it != skip_key.end() && it->second) continue;
      LstmState& state = states[key];
      if (!state.defined()) state = model.fusion()->InitialState();
      state = model.fusion()->Step(state, ops::SliceRow(inputs, t));
      on_step(key, state.hidden, left == 0);
    }
  }
}

struct KeyTrace {
  std::vector<Tensor> representations;  // per observed step
  bool halted = false;
  int observed = 0;
  int predicted = -1;
  Tensor logits;
  std::vector<Tensor> halt_probs;
  std::vector<int> actions;
  std::vector<Tensor> baseline_values;
};

}  // namespace

BaselineTrainer::BaselineTrainer(BaselineModel* model)
    : model_(model),
      main_optimizer_(model->MainParameters(),
                      model->config().base.learning_rate),
      baseline_optimizer_(model->BaselineParameters(),
                          model->config().base.baseline_learning_rate),
      rng_(model->config().base.seed ^ 0x62617365ULL) {}

TrainEpochStats BaselineTrainer::TrainEpoch(
    const std::vector<TangledSequence>& episodes) {
  KVEC_CHECK(!episodes.empty());
  const BaselineConfig& config = model_->config();
  TrainEpochStats stats;

  std::vector<int> order(episodes.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(order);

  for (int episode_id : order) {
    const TangledSequence& episode = episodes[episode_id];
    if (episode.items.empty()) continue;
    EpisodeIndex index = EpisodeIndex::Build(episode);

    std::map<int, KeyTrace> traces;
    std::map<int, bool> no_skips;
    StreamRepresentations(
        *model_, episode, index, rng_, /*training=*/true, no_skips,
        [&](int key, Tensor representation, bool is_last) {
          KeyTrace& trace = traces[key];
          if (trace.halted) return;
          ++trace.observed;
          switch (config.halting) {
            case HaltingKind::kPolicy: {
              Tensor halt_prob =
                  model_->policy().HaltProbability(representation);
              trace.halt_probs.push_back(halt_prob);
              trace.baseline_values.push_back(
                  model_->value_baseline().Forward(representation.Detach()));
              const float p = ClampProbability(halt_prob.ScalarValue());
              const int action = rng_.NextBernoulli(p) ? 1 : 0;
              trace.actions.push_back(action);
              if (action == 1 || is_last) {
                trace.logits = model_->classifier().Logits(representation);
                trace.predicted = ops::ArgMaxRow(trace.logits, 0);
                trace.halted = true;
              }
              break;
            }
            case HaltingKind::kFixed: {
              if (trace.observed >= config.fixed_halt_step || is_last) {
                trace.logits = model_->classifier().Logits(representation);
                trace.predicted = ops::ArgMaxRow(trace.logits, 0);
                trace.halted = true;
              }
              break;
            }
            case HaltingKind::kConfidence: {
              // Train the classifier at every prefix so its confidence is
              // calibrated at every potential halting point.
              trace.representations.push_back(representation);
              if (is_last) {
                trace.logits = model_->classifier().Logits(representation);
                trace.predicted = ops::ArgMaxRow(trace.logits, 0);
                trace.halted = true;
              }
              break;
            }
          }
        });

    std::vector<Tensor> logits_rows;
    std::vector<int> labels;
    std::vector<Tensor> policy_terms;
    std::vector<Tensor> earliness_terms;
    std::vector<Tensor> baseline_rows;
    std::vector<float> baseline_targets;
    int key_count = 0;

    for (auto& [key, trace] : traces) {
      if (trace.observed == 0) continue;
      const int label = episode.labels.at(key);
      ++key_count;
      if (config.halting == HaltingKind::kConfidence) {
        // One CE row per prefix, weight 1/n so long sequences do not
        // dominate.
        std::vector<Tensor> rows;
        std::vector<int> prefix_labels;
        for (const Tensor& representation : trace.representations) {
          rows.push_back(model_->classifier().Logits(representation));
          prefix_labels.push_back(label);
        }
        Tensor prefix_loss =
            ops::CrossEntropy(ops::StackRows(rows), prefix_labels);
        logits_rows.push_back(ops::Affine(
            prefix_loss, 1.0f / static_cast<float>(rows.size()), 0.0f));
        // Re-used below through the AddN over logits_rows.
        labels.push_back(-1);  // sentinel: loss already computed
        continue;
      }
      logits_rows.push_back(trace.logits);
      labels.push_back(label);

      if (config.halting == HaltingKind::kPolicy) {
        const float reward = (trace.predicted == label) ? 1.0f : -1.0f;
        const int n = trace.observed;
        for (int i = 0; i < n; ++i) {
          const float cumulative = static_cast<float>(n - (i + 1)) * reward;
          const float advantage =
              cumulative - trace.baseline_values[i].ScalarValue();
          const Tensor& p = trace.halt_probs[i];
          Tensor log_prob = trace.actions[i] == 1
                                ? ops::Log(p)
                                : ops::Log(ops::Affine(p, -1.0f, 1.0f));
          policy_terms.push_back(ops::Affine(log_prob, -advantage, 0.0f));
          earliness_terms.push_back(ops::Affine(ops::Log(p), -1.0f, 0.0f));
          baseline_rows.push_back(trace.baseline_values[i]);
          baseline_targets.push_back(cumulative);
        }
      }
    }
    if (key_count == 0) continue;
    const float inv_keys = 1.0f / static_cast<float>(key_count);

    Tensor l1;
    if (config.halting == HaltingKind::kConfidence) {
      l1 = ops::AddN(logits_rows);  // already per-sequence mean losses
    } else {
      std::vector<Tensor> rows;
      std::vector<int> row_labels;
      for (size_t i = 0; i < logits_rows.size(); ++i) {
        rows.push_back(logits_rows[i]);
        row_labels.push_back(labels[i]);
      }
      l1 = ops::CrossEntropy(ops::StackRows(rows), row_labels);
    }

    Tensor total_loss = l1;
    if (config.halting == HaltingKind::kPolicy && !policy_terms.empty()) {
      Tensor l2 = ops::AddN(policy_terms);
      Tensor l3 = ops::AddN(earliness_terms);
      total_loss =
          ops::AddN({l1, ops::Affine(l2, config.base.alpha, 0.0f),
                     ops::Affine(l3, config.base.beta, 0.0f)});
      stats.policy_loss += l2.ScalarValue() * inv_keys;
      stats.earliness_loss += l3.ScalarValue() * inv_keys;
    }
    total_loss = ops::Affine(total_loss, inv_keys, 0.0f);

    main_optimizer_.ZeroGrad();
    total_loss.Backward();
    ClipGradNorm(main_optimizer_.params(), config.base.grad_clip);
    main_optimizer_.Step();

    if (config.halting == HaltingKind::kPolicy && !baseline_rows.empty()) {
      Tensor baseline_loss =
          ops::MseLoss(ops::StackRows(baseline_rows), baseline_targets);
      baseline_optimizer_.ZeroGrad();
      baseline_loss.Backward();
      ClipGradNorm(baseline_optimizer_.params(), config.base.grad_clip);
      baseline_optimizer_.Step();
      stats.baseline_loss += baseline_loss.ScalarValue();
    }

    stats.total_loss += total_loss.ScalarValue();
    stats.classification_loss += l1.ScalarValue() * inv_keys;
    stats.episodes += 1;
  }

  if (stats.episodes > 0) {
    stats.total_loss /= stats.episodes;
    stats.classification_loss /= stats.episodes;
    stats.policy_loss /= stats.episodes;
    stats.earliness_loss /= stats.episodes;
    stats.baseline_loss /= stats.episodes;
  }
  return stats;
}

std::vector<TrainEpochStats> BaselineTrainer::Train(
    const std::vector<TangledSequence>& episodes) {
  std::vector<TrainEpochStats> history;
  history.reserve(model_->config().base.epochs);
  for (int epoch = 0; epoch < model_->config().base.epochs; ++epoch) {
    history.push_back(TrainEpoch(episodes));
  }
  return history;
}

EvaluationResult BaselineTrainer::Evaluate(
    const std::vector<TangledSequence>& episodes) {
  EvaluationResult result;
  const BaselineConfig& config = model_->config();

  for (const TangledSequence& episode : episodes) {
    if (episode.items.empty()) continue;
    EpisodeIndex index = EpisodeIndex::Build(episode);
    std::map<int, KeyTrace> traces;
    std::map<int, bool> no_skips;
    StreamRepresentations(
        *model_, episode, index, rng_, /*training=*/false, no_skips,
        [&](int key, Tensor representation, bool is_last) {
          KeyTrace& trace = traces[key];
          if (trace.halted) return;
          ++trace.observed;
          bool halt = false;
          switch (config.halting) {
            case HaltingKind::kPolicy: {
              Tensor halt_prob =
                  model_->policy().HaltProbability(representation);
              halt = halt_prob.ScalarValue() > 0.5f;
              break;
            }
            case HaltingKind::kFixed:
              halt = trace.observed >= config.fixed_halt_step;
              break;
            case HaltingKind::kConfidence: {
              Tensor probabilities = ops::Softmax(
                  model_->classifier().Logits(representation).Detach());
              halt = probabilities.At(0, ops::ArgMaxRow(probabilities, 0)) >=
                     config.confidence_threshold;
              break;
            }
          }
          if (halt || is_last) {
            trace.logits = model_->classifier().Logits(representation);
            trace.predicted = ops::ArgMaxRow(trace.logits, 0);
            trace.halted = true;
          }
        });

    for (auto& [key, trace] : traces) {
      if (trace.observed == 0) continue;
      PredictionRecord record;
      record.true_label = episode.labels.at(key);
      record.predicted_label = trace.predicted;
      record.observed_items = trace.observed;
      record.sequence_length = episode.KeyLength(key);
      record.confidence = MaxSoftmaxProbability(trace.logits);
      result.records.push_back(record);

      HaltingRecord halt;
      halt.key = key;
      halt.halt_position = trace.observed;
      halt.sequence_length = record.sequence_length;
      auto truth = episode.true_halt_positions.find(key);
      halt.true_halt_position =
          truth == episode.true_halt_positions.end() ? 0 : truth->second;
      result.halts.push_back(halt);
    }
  }
  result.summary =
      ::kvec::Evaluate(result.records, config.base.spec.num_classes);
  return result;
}

}  // namespace kvec
