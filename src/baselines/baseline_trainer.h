// Training and evaluation loops for the baseline methods, mirroring
// KvecTrainer but with per-method representation / halting behaviour.
#pragma once

#include <vector>

#include "baselines/baseline_model.h"
#include "core/trainer.h"
#include "nn/optimizer.h"

namespace kvec {

class BaselineTrainer {
 public:
  explicit BaselineTrainer(BaselineModel* model);

  TrainEpochStats TrainEpoch(const std::vector<TangledSequence>& episodes);
  std::vector<TrainEpochStats> Train(
      const std::vector<TangledSequence>& episodes);
  EvaluationResult Evaluate(const std::vector<TangledSequence>& episodes);

 private:
  BaselineModel* model_;
  Adam main_optimizer_;
  Adam baseline_optimizer_;
  Rng rng_;
};

}  // namespace kvec

