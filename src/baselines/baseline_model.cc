#include "baselines/baseline_model.h"

#include "util/check.h"

namespace kvec {
namespace {

// The SRN encoder sees only intra-sequence (key) correlation and no
// membership embedding; the LSTM baseline consumes raw input embeddings
// without positional information (EARLIEST models the series with the LSTM
// itself).
KvecConfig RepresentationConfig(const BaselineConfig& config) {
  KvecConfig adjusted = config.base;
  adjusted.correlation.use_key_correlation = true;
  adjusted.correlation.use_value_correlation = false;
  adjusted.use_membership_embedding = false;
  if (config.representation == RepresentationKind::kLstm) {
    adjusted.use_time_embeddings = false;
  }
  return adjusted;
}

}  // namespace

BaselineModel::BaselineModel(const BaselineConfig& config)
    : config_(config),
      init_rng_(config.base.seed),
      state_dim_(config.representation == RepresentationKind::kLstm
                     ? config.base.state_dim
                     : config.base.embed_dim),
      value_baseline_(state_dim_, config.base.baseline_hidden_dim, init_rng_),
      classifier_(state_dim_, config.base.spec.num_classes, init_rng_) {
  KvecConfig representation_config = RepresentationConfig(config);
  if (config.representation == RepresentationKind::kTransformer) {
    encoder_ =
        std::make_unique<KvrlEncoder>(representation_config, init_rng_);
  } else {
    input_ = std::make_unique<InputEmbedding>(representation_config,
                                              init_rng_);
    fusion_ = std::make_unique<LstmFusionCell>(
        representation_config.embed_dim, config.base.state_dim, init_rng_);
  }
  if (config.halting == HaltingKind::kPolicy) {
    policy_ = std::make_unique<EctlPolicy>(state_dim_, init_rng_);
  }
  KVEC_CHECK_GT(state_dim_, 0);
}

void BaselineModel::CollectParameters(std::vector<Tensor>* out) {
  if (encoder_) encoder_->CollectParameters(out);
  if (input_) input_->CollectParameters(out);
  if (fusion_) fusion_->CollectParameters(out);
  if (policy_) policy_->CollectParameters(out);
  classifier_.CollectParameters(out);
  value_baseline_.CollectParameters(out);
}

std::vector<Tensor> BaselineModel::MainParameters() {
  std::vector<Tensor> params;
  if (encoder_) encoder_->CollectParameters(&params);
  if (input_) input_->CollectParameters(&params);
  if (fusion_) fusion_->CollectParameters(&params);
  if (policy_) policy_->CollectParameters(&params);
  classifier_.CollectParameters(&params);
  return params;
}

std::vector<Tensor> BaselineModel::BaselineParameters() {
  std::vector<Tensor> params;
  value_baseline_.CollectParameters(&params);
  return params;
}

}  // namespace kvec
