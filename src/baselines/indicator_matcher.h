// A feature-based early classifier in the style of interpretable-shapelet
// extraction (Related Work, "feature based approaches"), adapted to
// symbolic key-value sequences.
//
// Training mines discriminative value n-grams ("indicators") from the
// prefixes of the training sequences: an n-gram of item tokens is an
// indicator for class c when it occurs in at least `min_support` training
// sequences and P(class = c | n-gram observed) >= `precision_threshold`.
// At test time the sequence halts the moment any indicator fires inside the
// observed prefix and predicts that indicator's class; sequences where no
// indicator ever fires fall back to the training majority class at full
// length. The precision threshold is the earliness-accuracy knob: lower
// thresholds admit weaker indicators that fire earlier but misfire more.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/trainer.h"
#include "data/types.h"

namespace kvec {

struct IndicatorMatcherConfig {
  int max_ngram = 3;       // indicator lengths 1..max_ngram
  int max_prefix = 24;     // mine only from the first max_prefix items
  int min_support = 4;     // sequences an n-gram must appear in
  float precision_threshold = 0.8f;  // earliness-accuracy knob
};

class IndicatorMatcher {
 public:
  IndicatorMatcher(const DatasetSpec& spec,
                   const IndicatorMatcherConfig& config);

  // Mines indicators from all key-value sequences in `episodes`.
  void Fit(const std::vector<TangledSequence>& episodes);

  // Streams every key-value sequence; halts on the first indicator match.
  EvaluationResult Evaluate(const std::vector<TangledSequence>& episodes) const;

  // Number of mined indicators (after thresholding).
  int num_indicators() const { return num_indicators_; }
  int majority_class() const { return majority_class_; }
  const IndicatorMatcherConfig& config() const { return config_; }

 private:
  struct Candidate {
    std::vector<int> class_counts;
    bool indicator = false;  // passed support+precision thresholds
    int predicted_class = 0;
    float precision = 0.0f;
  };

  // Collapses an item's value vector into one token id (mixed-radix over
  // the field vocabularies, folded into a 61-bit hash when it would
  // overflow).
  uint64_t ItemToken(const Item& item) const;
  // Packs an n-gram of tokens into one 64-bit key.
  static uint64_t NgramKey(const std::vector<uint64_t>& window, int begin,
                           int length);

  DatasetSpec spec_;
  IndicatorMatcherConfig config_;
  std::unordered_map<uint64_t, Candidate> candidates_;
  int num_indicators_ = 0;
  int majority_class_ = 0;
  // Training frequency of the majority class; the fallback's confidence.
  double majority_fraction_ = 0.0;
};

}  // namespace kvec

