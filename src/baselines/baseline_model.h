// Baseline early-classification methods (paper §V-A.2).
//
// All four baselines treat every key-value sequence independently — no
// inter-sequence (value) correlation — and differ in the representation
// model and the halting rule:
//
//   method          representation                halting rule
//   --------------  ----------------------------  ----------------------
//   EARLIEST        LSTM over item embeddings     learned RL policy
//   SRN-EARLIEST    per-sequence Transformer      learned RL policy
//   SRN-Fixed       per-sequence Transformer      fixed step τ
//   SRN-Confidence  per-sequence Transformer      classifier confidence µ
//
// The per-sequence Transformer ("SRN") is realised as a KvrlEncoder whose
// mask only contains key correlation (each item attends to earlier items of
// its own sequence) and whose membership embedding is disabled — on a
// tangled stream that is exactly independent per-sequence encoding.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/heads.h"
#include "nn/lstm_cell.h"
#include "nn/module.h"

namespace kvec {

enum class RepresentationKind {
  kLstm,         // EARLIEST
  kTransformer,  // SRN-*
};

enum class HaltingKind {
  kPolicy,      // learned RL halting policy (EARLIEST / SRN-EARLIEST)
  kFixed,       // halt after τ observed items (SRN-Fixed)
  kConfidence,  // halt once max softmax probability >= µ (SRN-Confidence)
};

struct BaselineConfig {
  std::string name = "baseline";
  RepresentationKind representation = RepresentationKind::kTransformer;
  HaltingKind halting = HaltingKind::kPolicy;

  // Dimensions / training hyper-parameters; `base.beta` doubles as the
  // earliness-accuracy trade-off λ of (SRN-)EARLIEST.
  KvecConfig base;

  int fixed_halt_step = 5;            // τ (SRN-Fixed)
  float confidence_threshold = 0.9f;  // µ (SRN-Confidence)
};

class BaselineModel : public Module {
 public:
  explicit BaselineModel(const BaselineConfig& config);

  const BaselineConfig& config() const { return config_; }
  // Width of the sequence representation consumed by the heads.
  int state_dim() const { return state_dim_; }

  // Representation machinery (used by BaselineTrainer):
  const KvrlEncoder* encoder() const { return encoder_.get(); }
  const InputEmbedding* input_embedding() const { return input_.get(); }
  const LstmFusionCell* fusion() const { return fusion_.get(); }
  const EctlPolicy& policy() const { return *policy_; }
  const BaselineNetwork& value_baseline() const { return value_baseline_; }
  const SequenceClassifier& classifier() const { return classifier_; }

  void CollectParameters(std::vector<Tensor>* out) override;

  std::vector<Tensor> MainParameters();
  std::vector<Tensor> BaselineParameters();

 private:
  BaselineConfig config_;
  Rng init_rng_;
  int state_dim_;
  std::unique_ptr<KvrlEncoder> encoder_;   // kTransformer
  std::unique_ptr<InputEmbedding> input_;  // kLstm
  std::unique_ptr<LstmFusionCell> fusion_;  // kLstm
  std::unique_ptr<EctlPolicy> policy_;      // kPolicy halting only
  BaselineNetwork value_baseline_;
  SequenceClassifier classifier_;
};

}  // namespace kvec

