#include "cli/json_writer.h"

#include <cmath>
#include <cstdio>

namespace kvec {
namespace cli {

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (!first_in_scope_) out_ += ",";
    out_ += "\n";
    Indent();
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += "{";
  stack_.push_back(true);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) {
    out_ += "\n";
    Indent();
  }
  out_ += "}";
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += "[";
  stack_.push_back(false);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) {
    out_ += "\n";
    Indent();
  }
  out_ += "]";
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!first_in_scope_) out_ += ",";
  out_ += "\n";
  Indent();
  out_ += "\"" + Escape(name) + "\": ";
  first_in_scope_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += "\"" + Escape(value) + "\"";
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value, int precision) {
  BeforeValue();
  // JSON has no NaN/Infinity tokens; a diverged metric must not make the
  // whole document unparsable.
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const { return out_ + "\n"; }

}  // namespace cli
}  // namespace kvec
