#include "cli/model_io.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "data/io.h"

namespace kvec {
namespace cli {
namespace {

// Bumped when the config wire layout changes; readers reject unknown
// versions instead of misparsing.
constexpr int32_t kConfigVersion = 1;

void WriteSpec(const DatasetSpec& spec, BinaryWriter* writer) {
  writer->WriteString(spec.name);
  writer->WriteInt32(static_cast<int32_t>(spec.value_fields.size()));
  for (const ValueField& field : spec.value_fields) {
    writer->WriteString(field.name);
    writer->WriteInt32(field.vocab_size);
  }
  writer->WriteInt32(spec.session_field);
  writer->WriteInt32(spec.num_classes);
  writer->WriteInt32(spec.max_keys_per_episode);
  writer->WriteInt32(spec.max_sequence_length);
  writer->WriteInt32(spec.max_episode_length);
  writer->WriteFloat(static_cast<float>(spec.target_avg_length));
  writer->WriteFloat(static_cast<float>(spec.target_avg_session_length));
}

bool ReadSpec(BinaryReader* reader, DatasetSpec* spec) {
  DatasetSpec out;
  out.name = reader->ReadString();
  int32_t num_fields = reader->ReadInt32();
  if (!reader->ok() || num_fields < 0 ||
      static_cast<size_t>(num_fields) > reader->remaining()) {
    return false;
  }
  out.value_fields.resize(num_fields);
  for (ValueField& field : out.value_fields) {
    field.name = reader->ReadString();
    field.vocab_size = reader->ReadInt32();
  }
  out.session_field = reader->ReadInt32();
  out.num_classes = reader->ReadInt32();
  out.max_keys_per_episode = reader->ReadInt32();
  out.max_sequence_length = reader->ReadInt32();
  out.max_episode_length = reader->ReadInt32();
  out.target_avg_length = reader->ReadFloat();
  out.target_avg_session_length = reader->ReadFloat();
  if (!reader->ok()) return false;
  *spec = std::move(out);
  return true;
}

std::string Lower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool ParseIntField(const std::string& text, int* out) {
  try {
    size_t consumed = 0;
    int value = std::stoi(text, &consumed);
    if (consumed != text.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool ParseDoubleField(const std::string& text, double* out) {
  try {
    size_t consumed = 0;
    double value = std::stod(text, &consumed);
    if (consumed != text.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Caps on the spec-driven sizes a config/spec may request: every one of
// these sizes an embedding table (× embed_dim floats), so a corrupt or
// hand-authored artifact must not be able to demand absurd allocations.
constexpr int kMaxSpecDimension = 1 << 24;

bool SpecSane(const DatasetSpec& spec) {
  if (spec.num_classes <= 0 || spec.num_classes > kMaxSpecDimension ||
      spec.value_fields.empty() ||
      spec.max_keys_per_episode <= 0 ||
      spec.max_keys_per_episode > kMaxSpecDimension ||
      spec.max_sequence_length <= 0 ||
      spec.max_sequence_length > kMaxSpecDimension ||
      spec.max_episode_length <= 0 ||
      spec.max_episode_length > kMaxSpecDimension) {
    return false;
  }
  if (spec.session_field < 0 ||
      spec.session_field >= static_cast<int>(spec.value_fields.size())) {
    return false;
  }
  for (const ValueField& field : spec.value_fields) {
    if (field.vocab_size <= 0 || field.vocab_size > kMaxSpecDimension) {
      return false;
    }
  }
  return true;
}

// Items and labels must stay inside the spec's ranges: the embedding
// lookups and the loss/metrics KVEC_CHECK (abort) on out-of-range token
// ids and class labels, and `kvec serve`'s episode interleaving relies on
// keys < max_keys_per_episode for globally unique key offsets — so the
// loader rejects such data up front and keeps the fail-closed contract.
bool EpisodesMatchSpec(const std::vector<TangledSequence>& episodes,
                       const DatasetSpec& spec, const char* file,
                       std::string* error) {
  for (const TangledSequence& episode : episodes) {
    for (const auto& [key, label] : episode.labels) {
      if (key < 0 || key >= spec.max_keys_per_episode) {
        *error = std::string(file) +
                 ": key out of the spec's max_keys_per_episode range";
        return false;
      }
      if (label < 0 || label >= spec.num_classes) {
        *error = std::string(file) + ": label out of the spec's class range";
        return false;
      }
    }
    for (const Item& item : episode.items) {
      if (item.key < 0 || item.key >= spec.max_keys_per_episode ||
          static_cast<int>(item.value.size()) != spec.num_value_fields()) {
        *error = std::string(file) + ": item key/value arity does not match "
                                     "the spec";
        return false;
      }
      for (size_t field = 0; field < item.value.size(); ++field) {
        if (item.value[field] < 0 ||
            item.value[field] >= spec.value_fields[field].vocab_size) {
          *error = std::string(file) + ": value token out of the spec's '" +
                   spec.value_fields[field].name + "' vocabulary";
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << content;
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

void WriteKvecConfig(const KvecConfig& config, BinaryWriter* writer) {
  writer->WriteInt32(kConfigVersion);
  writer->WriteInt32(config.embed_dim);
  writer->WriteInt32(config.state_dim);
  writer->WriteInt32(config.num_blocks);
  writer->WriteInt32(config.num_heads);
  writer->WriteInt32(config.ffn_hidden_dim);
  writer->WriteFloat(config.dropout);
  writer->WriteInt32(config.baseline_hidden_dim);
  WriteSpec(config.spec, writer);
  writer->WriteInt32(config.use_membership_embedding ? 1 : 0);
  writer->WriteInt32(config.use_time_embeddings ? 1 : 0);
  writer->WriteInt32(config.correlation.use_key_correlation ? 1 : 0);
  writer->WriteInt32(config.correlation.use_value_correlation ? 1 : 0);
  writer->WriteInt32(config.correlation.value_correlation_window);
  writer->WriteInt32(config.correlation.session_field);
  writer->WriteInt32(config.correlation.max_value_correlations);
  writer->WriteInt32(static_cast<int32_t>(config.fusion));
  writer->WriteFloat(config.alpha);
  writer->WriteFloat(config.beta);
  writer->WriteFloat(config.learning_rate);
  writer->WriteFloat(config.baseline_learning_rate);
  writer->WriteInt32(config.epochs);
  writer->WriteFloat(config.grad_clip);
  writer->WriteInt64(static_cast<int64_t>(config.seed));
  writer->WriteInt32(static_cast<int32_t>(config.lr_schedule));
  writer->WriteInt32(config.warmup_epochs);
  writer->WriteFloat(config.min_learning_rate);
}

bool ReadKvecConfig(BinaryReader* reader, KvecConfig* config) {
  if (reader->ReadInt32() != kConfigVersion || !reader->ok()) return false;
  KvecConfig out;
  out.embed_dim = reader->ReadInt32();
  out.state_dim = reader->ReadInt32();
  out.num_blocks = reader->ReadInt32();
  out.num_heads = reader->ReadInt32();
  out.ffn_hidden_dim = reader->ReadInt32();
  out.dropout = reader->ReadFloat();
  out.baseline_hidden_dim = reader->ReadInt32();
  if (!ReadSpec(reader, &out.spec)) return false;
  out.use_membership_embedding = reader->ReadInt32() != 0;
  out.use_time_embeddings = reader->ReadInt32() != 0;
  out.correlation.use_key_correlation = reader->ReadInt32() != 0;
  out.correlation.use_value_correlation = reader->ReadInt32() != 0;
  out.correlation.value_correlation_window = reader->ReadInt32();
  out.correlation.session_field = reader->ReadInt32();
  out.correlation.max_value_correlations = reader->ReadInt32();
  int32_t fusion = reader->ReadInt32();
  if (fusion < 0 || fusion > static_cast<int32_t>(KvecConfig::FusionKind::kLast)) {
    return false;
  }
  out.fusion = static_cast<KvecConfig::FusionKind>(fusion);
  out.alpha = reader->ReadFloat();
  out.beta = reader->ReadFloat();
  out.learning_rate = reader->ReadFloat();
  out.baseline_learning_rate = reader->ReadFloat();
  out.epochs = reader->ReadInt32();
  out.grad_clip = reader->ReadFloat();
  out.seed = static_cast<uint64_t>(reader->ReadInt64());
  int32_t schedule = reader->ReadInt32();
  if (schedule < 0 ||
      schedule > static_cast<int32_t>(KvecConfig::LrSchedule::kWarmupCosine)) {
    return false;
  }
  out.lr_schedule = static_cast<KvecConfig::LrSchedule>(schedule);
  out.warmup_epochs = reader->ReadInt32();
  out.min_learning_rate = reader->ReadFloat();
  if (!reader->ok()) return false;
  // Structural sanity so a parseable-but-absurd config cannot drive huge
  // allocations when the model is constructed from it — the model dims and
  // every spec-driven embedding-table size (vocabularies, key/position/
  // time ranges).
  if (out.embed_dim <= 0 || out.embed_dim > 1 << 16 || out.state_dim <= 0 ||
      out.state_dim > 1 << 16 || out.num_blocks <= 0 || out.num_blocks > 256 ||
      out.num_heads <= 0 || out.embed_dim % out.num_heads != 0 ||
      out.ffn_hidden_dim <= 0 || out.ffn_hidden_dim > 1 << 16 ||
      out.baseline_hidden_dim <= 0 || out.baseline_hidden_dim > 1 << 16 ||
      !SpecSane(out.spec)) {
    return false;
  }
  *config = std::move(out);
  return true;
}

bool SaveModelBundle(const std::string& path, KvecModel* model) {
  Checkpoint checkpoint;
  CheckpointSection config_section;
  config_section.id = kCheckpointSectionModelConfig;
  BinaryWriter config_writer;
  WriteKvecConfig(model->config(), &config_writer);
  config_section.payload = config_writer.buffer();
  checkpoint.sections.push_back(std::move(config_section));

  CheckpointSection params_section;
  params_section.id = kCheckpointSectionModelParams;
  BinaryWriter params_writer;
  model->SaveParameters(&params_writer);
  params_section.payload = params_writer.buffer();
  checkpoint.sections.push_back(std::move(params_section));

  return CheckpointSave(path, checkpoint);
}

std::unique_ptr<KvecModel> LoadModelBundle(const std::string& path,
                                           std::string* error) {
  auto fail = [error](const std::string& why) -> std::unique_ptr<KvecModel> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  Checkpoint checkpoint;
  if (!CheckpointLoad(path, &checkpoint)) {
    return fail("cannot read model bundle '" + path + "'");
  }
  const CheckpointSection* config_section =
      checkpoint.Find(kCheckpointSectionModelConfig);
  const CheckpointSection* params_section =
      checkpoint.Find(kCheckpointSectionModelParams);
  if (config_section == nullptr || params_section == nullptr) {
    return fail("model bundle '" + path + "' is missing a section");
  }
  BinaryReader config_reader(config_section->payload);
  KvecConfig config;
  if (!ReadKvecConfig(&config_reader, &config)) {
    return fail("model bundle '" + path + "' has a corrupt config section");
  }
  auto model = std::make_unique<KvecModel>(config);
  BinaryReader params_reader(params_section->payload);
  if (!model->LoadParameters(&params_reader)) {
    return fail("model bundle '" + path +
                "' has parameters that do not match its config");
  }
  return model;
}

Table SpecToTable(const DatasetSpec& spec) {
  Table table({"key", "value", "aux"});
  table.AddRow({"name", spec.name, ""});
  table.AddRow({"session_field", std::to_string(spec.session_field), ""});
  table.AddRow({"num_classes", std::to_string(spec.num_classes), ""});
  table.AddRow(
      {"max_keys_per_episode", std::to_string(spec.max_keys_per_episode), ""});
  table.AddRow(
      {"max_sequence_length", std::to_string(spec.max_sequence_length), ""});
  table.AddRow(
      {"max_episode_length", std::to_string(spec.max_episode_length), ""});
  table.AddRow({"target_avg_length",
                Table::FormatDouble(spec.target_avg_length, 4), ""});
  table.AddRow({"target_avg_session_length",
                Table::FormatDouble(spec.target_avg_session_length, 4), ""});
  for (const ValueField& field : spec.value_fields) {
    table.AddRow({"value_field", field.name,
                  std::to_string(field.vocab_size)});
  }
  return table;
}

bool SpecFromTable(const Table& table, DatasetSpec* spec) {
  if (table.columns().size() != 3) return false;
  DatasetSpec out;
  for (const std::vector<std::string>& row : table.rows()) {
    if (row.size() != 3) return false;
    const std::string& key = row[0];
    const std::string& value = row[1];
    if (key == "name") {
      out.name = value;
    } else if (key == "session_field") {
      if (!ParseIntField(value, &out.session_field)) return false;
    } else if (key == "num_classes") {
      if (!ParseIntField(value, &out.num_classes)) return false;
    } else if (key == "max_keys_per_episode") {
      if (!ParseIntField(value, &out.max_keys_per_episode)) return false;
    } else if (key == "max_sequence_length") {
      if (!ParseIntField(value, &out.max_sequence_length)) return false;
    } else if (key == "max_episode_length") {
      if (!ParseIntField(value, &out.max_episode_length)) return false;
    } else if (key == "target_avg_length") {
      if (!ParseDoubleField(value, &out.target_avg_length)) return false;
    } else if (key == "target_avg_session_length") {
      if (!ParseDoubleField(value, &out.target_avg_session_length)) {
        return false;
      }
    } else if (key == "value_field") {
      ValueField field;
      field.name = value;
      if (!ParseIntField(row[2], &field.vocab_size)) return false;
      out.value_fields.push_back(std::move(field));
    } else {
      return false;  // unknown key: stale layout or typo, fail loudly
    }
  }
  if (!SpecSane(out)) return false;
  *spec = std::move(out);
  return true;
}

bool SaveDatasetDir(const std::string& dir, const Dataset& dataset,
                    std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create directory '" + dir + "'";
    return false;
  }
  const int fields = dataset.spec.num_value_fields();
  std::string write_error;
  if (!WriteTextFile(dir + "/spec.csv", SpecToTable(dataset.spec).ToCsv(),
                     &write_error) ||
      !SaveTangledSequences(dataset.train, fields, dir + "/train.csv") ||
      !SaveTangledSequences(dataset.validation, fields,
                            dir + "/validation.csv") ||
      !SaveTangledSequences(dataset.test, fields, dir + "/test.csv")) {
    if (error != nullptr) *error = "cannot write dataset files under '" + dir + "'";
    return false;
  }
  return true;
}

bool LoadDatasetDir(const std::string& dir, Dataset* dataset,
                    std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string spec_csv;
  if (!ReadFileToString(dir + "/spec.csv", &spec_csv)) {
    return fail("cannot read '" + dir + "/spec.csv'");
  }
  Table spec_table({"key", "value", "aux"});
  if (!Table::FromCsv(spec_csv, &spec_table)) {
    return fail("'" + dir + "/spec.csv' is not a valid CSV table");
  }
  Dataset out;
  if (!SpecFromTable(spec_table, &out.spec)) {
    return fail("'" + dir + "/spec.csv' does not describe a DatasetSpec");
  }
  struct Split {
    const char* file;
    std::vector<TangledSequence>* episodes;
  };
  Split splits[] = {{"train.csv", &out.train},
                    {"validation.csv", &out.validation},
                    {"test.csv", &out.test}};
  for (const Split& split : splits) {
    if (!LoadTangledSequences(dir + "/" + split.file, split.episodes)) {
      return fail("cannot parse '" + dir + "/" + split.file + "'");
    }
    std::string mismatch;
    if (!EpisodesMatchSpec(*split.episodes, out.spec, split.file,
                           &mismatch)) {
      return fail("'" + dir + "': " + mismatch);
    }
  }
  *dataset = std::move(out);
  return true;
}

const std::vector<PresetInfo>& AllPresets() {
  static const std::vector<PresetInfo> presets = {
      {PresetId::kUstcTfc2016, "USTC-TFC2016", "ustc"},
      {PresetId::kMovieLens1M, "MovieLens-1M", "movielens"},
      {PresetId::kTrafficFg, "Traffic-FG", "traffic-fg"},
      {PresetId::kTrafficApp, "Traffic-App", "traffic-app"},
      {PresetId::kSyntheticEarly, "Synthetic-Traffic(early)",
       "synthetic-early"},
      {PresetId::kSyntheticLate, "Synthetic-Traffic(late)", "synthetic-late"},
  };
  return presets;
}

bool ParsePresetId(const std::string& text, PresetId* id) {
  const std::string needle = Lower(text);
  for (const PresetInfo& preset : AllPresets()) {
    if (needle == Lower(preset.canonical) || needle == preset.alias) {
      *id = preset.id;
      return true;
    }
  }
  return false;
}

}  // namespace cli
}  // namespace kvec
