// Flag parsing for the `kvec` driver binary (apps/kvec.cc).
//
// A deliberately small layer: every subcommand declares its flags up front
// (name, type, default, help line), then parses `--name value` /
// `--name=value` argument vectors. Parsing fails closed — an unknown flag,
// a missing value, or an unparsable number produces an error message plus
// the flag table, never a partially-applied configuration. `--help` is
// always recognised.
//
// Not thread-safe (a parser is built, used, and discarded inside one
// subcommand invocation); no global state, so concurrent RunKvecCli calls
// with separate parsers are fine (tests/cli_test.cc drives it in-process).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace kvec {
namespace cli {

class ArgParser {
 public:
  // `command` is the usage prefix, e.g. "kvec train".
  explicit ArgParser(std::string command);

  // Flag registration. The returned pointer stays valid for the parser's
  // lifetime and holds the default until Parse overwrites it.
  std::string* AddString(const std::string& name, std::string default_value,
                         const std::string& help);
  int64_t* AddInt(const std::string& name, int64_t default_value,
                  const std::string& help);
  double* AddDouble(const std::string& name, double default_value,
                    const std::string& help);
  // Boolean flags take no value: `--flag` sets true, `--no-flag` sets false.
  bool* AddBool(const std::string& name, bool default_value,
                const std::string& help);

  // Parses `args` (argv minus the program and subcommand names). Returns
  // false on any error, with a one-line diagnostic in `error()`. After a
  // successful parse, `help_requested()` reports whether --help was seen
  // (flag values are still populated).
  bool Parse(const std::vector<std::string>& args);

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  // True when the user passed the flag explicitly (vs. the default).
  bool Provided(const std::string& name) const;

  // The aligned flag table (name, default, help), for usage output.
  std::string Usage() const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string name;
    Kind kind = Kind::kString;
    std::string help;
    std::string default_text;
    bool provided = false;
    // Exactly one is live, per kind. Deques would avoid the indirection but
    // pointers into std::vector<unique_ptr-free> members must stay stable,
    // so values are heap-boxed via the vectors below.
    size_t value_index = 0;
  };

  Flag* FindFlag(const std::string& name);
  bool SetValue(Flag* flag, const std::string& text);

  std::string command_;
  std::vector<Flag> flags_;
  // Value storage; boxed separately per type so registration order cannot
  // invalidate earlier pointers.
  std::vector<std::unique_ptr<std::string>> strings_;
  std::vector<std::unique_ptr<int64_t>> ints_;
  std::vector<std::unique_ptr<double>> doubles_;
  std::vector<std::unique_ptr<bool>> bools_;
  bool help_requested_ = false;
  std::string error_;
};

// Splits "a,b,c" into {"a","b","c"}; empty input gives an empty list.
std::vector<std::string> SplitCommaList(const std::string& text);

}  // namespace cli
}  // namespace kvec

