// Minimal deterministic JSON emission for the `kvec` CLI.
//
// Every machine-readable output of the driver (metrics, sweep tables,
// serving stats) goes through this writer: keys are emitted in call order,
// doubles with a fixed precision, so the same run produces byte-identical
// JSON — which is what lets tests/cli_test.cc pin `kvec eval --json`
// against a committed golden file. Serialisation only; there is
// deliberately no parser (the CLI never consumes JSON).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kvec {
namespace cli {

class JsonWriter {
 public:
  // Containers. Begin* at the top level or inside an array; Key(...) first
  // inside an object.
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object member name; must be followed by exactly one value or container.
  JsonWriter& Key(const std::string& name);

  // Scalars. Non-finite doubles (a diverged loss) emit null — JSON has no
  // NaN/Infinity tokens and the document must stay parsable.
  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value, int precision = 6);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // The document so far. Pretty-printed with two-space indentation and a
  // trailing newline, so shell users and golden files both read naturally.
  std::string str() const;

  static std::string Escape(const std::string& text);

 private:
  void BeforeValue();
  void Indent();

  std::string out_;
  // One frame per open container: true = object, false = array.
  std::vector<bool> stack_;
  bool first_in_scope_ = true;
  bool after_key_ = false;
};

}  // namespace cli
}  // namespace kvec

