// Model bundles and dataset directories — the on-disk artifacts that let
// the `kvec` subcommands compose across processes.
//
// A *model bundle* (`kvec train --model out.kvm`) is one checkpoint
// container (util/serialize.h) holding two sections: the full KvecConfig —
// dataset spec included, since the spec sizes every embedding table — and
// the parameter stream of Module::SaveParameters. `kvec eval` / `kvec
// serve` rebuild the model from the config section and then load the
// weights, so a bundle is self-describing: no sidecar files, no flag
// replay. Loads fail closed (container decode, config parse, and parameter
// shapes are all validated; on any failure the output pointer is left
// empty).
//
// A *dataset directory* (`kvec generate --out dir`) is the CSV layout of
// data/io.h split across train.csv / validation.csv / test.csv plus a
// spec.csv key-value table describing the DatasetSpec. It is deliberately
// plain text: the same directory doubles as the bring-your-own-data entry
// point (write the CSVs yourself, reuse any preset's spec or edit it).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/presets.h"
#include "data/types.h"
#include "util/serialize.h"
#include "util/table.h"

namespace kvec {
namespace cli {

// The model bundle's checkpoint-container section ids
// (kCheckpointSectionModelConfig / kCheckpointSectionModelParams) live in
// the registry in util/serialize.h with every other id.

// ---- Model bundle --------------------------------------------------------

// Serialises config + parameters; false on I/O failure.
bool SaveModelBundle(const std::string& path, KvecModel* model);

// Rebuilds the model from `path`. On failure returns nullptr and, when
// `error` is non-null, stores a one-line reason.
std::unique_ptr<KvecModel> LoadModelBundle(const std::string& path,
                                           std::string* error = nullptr);

// Config (de)serialisation used by the bundle; exposed for tests.
void WriteKvecConfig(const KvecConfig& config, BinaryWriter* writer);
bool ReadKvecConfig(BinaryReader* reader, KvecConfig* config);

// Whole-file text write shared by the CLI layer; false (with a one-line
// reason in `error`) on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error);

// ---- Dataset directories -------------------------------------------------

// DatasetSpec as a key/value(/aux) table — the spec.csv payload.
Table SpecToTable(const DatasetSpec& spec);
bool SpecFromTable(const Table& table, DatasetSpec* spec);

// Writes spec.csv + {train,validation,test}.csv into `dir` (created if
// missing). False on I/O failure.
bool SaveDatasetDir(const std::string& dir, const Dataset& dataset,
                    std::string* error = nullptr);

// Loads a directory written by SaveDatasetDir (or hand-authored in the
// same layout). Fails closed with `*dataset` untouched.
bool LoadDatasetDir(const std::string& dir, Dataset* dataset,
                    std::string* error = nullptr);

// ---- Preset names --------------------------------------------------------

// Parses a dataset preset id from its canonical Table-I name
// ("USTC-TFC2016", "MovieLens-1M", "Traffic-FG", "Traffic-App",
// "Synthetic-Traffic(early)", "Synthetic-Traffic(late)") or the kebab-case
// aliases the CLI documents: ustc, movielens, traffic-fg, traffic-app,
// synthetic-early, synthetic-late. Case-insensitive; false on anything
// else.
bool ParsePresetId(const std::string& text, PresetId* id);

// All preset ids with their canonical names and CLI aliases, for --help
// and `kvec generate --list`.
struct PresetInfo {
  PresetId id;
  const char* canonical;
  const char* alias;
};
const std::vector<PresetInfo>& AllPresets();

}  // namespace cli
}  // namespace kvec

