// Subcommand dispatch for the `kvec` driver binary.
//
// The driver is the canonical entry point of the repository: every layer
// that used to be reachable only through bespoke example/bench binaries —
// the preset generators, the trainer, the sweep/evaluation harness, the
// baselines, and the (sharded) serving stack with its checkpoints — is
// wired behind one subcommand each:
//
//   kvec generate    synthesize a dataset preset into a CSV directory
//   kvec train       train a KVEC model, save a self-describing bundle
//   kvec eval        evaluate a bundle on a split (tables or JSON)
//   kvec sweep       earliness/accuracy sweeps across methods
//   kvec serve       replay a stream through StreamServer/sharded serving
//   kvec bench       end-to-end serving throughput measurement
//   kvec checkpoint  inspect model bundles and serving checkpoints
//
// `RunKvecCli` is stream-parameterised so tests drive the full dispatch
// path in-process (tests/cli_test.cc); apps/kvec.cc is a two-line argv
// shim. All subcommands are deterministic for fixed flags and seeds,
// except where they report wall-clock timings (serve/bench).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace kvec {
namespace cli {

// Runs the driver on `args` — argv without the program name, so the
// subcommand (if any) is args[0]. Regular output goes to `out`; usage and
// diagnostics to `err`. Returns the process exit code: 0 on success (and
// for --help), 1 on a runtime failure (unreadable file, corrupt bundle),
// 2 on a usage error (unknown subcommand/flag, missing required flag).
int RunKvecCli(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);

// main() shim used by apps/kvec.cc.
int KvecMain(int argc, char** argv);

// Asks a running `kvec serve` replay to stop at the next batch boundary:
// drain the shard queues, print final (per-shard) stats, honor
// --save-checkpoint, and exit 130. Installed as the SIGINT action while
// serve runs; exposed so tests can trigger the graceful-shutdown path
// in-process without racing a real signal.
void RequestServeInterrupt();

// The subcommand table (name + one-line summary), in help order.
struct SubcommandInfo {
  const char* name;
  const char* summary;
};
const std::vector<SubcommandInfo>& Subcommands();

}  // namespace cli
}  // namespace kvec

