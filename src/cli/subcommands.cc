#include "cli/subcommands.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <thread>

#include "cli/args.h"
#include "cli/json_writer.h"
#include "cli/model_io.h"
#include "cli/soak.h"
#include "core/model.h"
#include "core/sharded_stream_server.h"
#include "core/stream_server.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/presets.h"
#include "exp/cache.h"
#include "exp/method.h"
#include "exp/sweep.h"
#include "metrics/metrics.h"
#include "net/loadgen.h"
#include "net/tcp_ingest_server.h"
#include "util/bounded_queue.h"
#include "util/fault_injection.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/table.h"

namespace kvec {
namespace cli {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
// Graceful SIGINT shutdown (128 + SIGINT), the shell convention.
constexpr int kExitInterrupted = 130;

// Set by the SIGINT action while `kvec serve` replays (and by
// RequestServeInterrupt from tests); the replay loops poll it at batch
// boundaries. std::atomic<bool> is lock-free on every target we build, so
// the store is async-signal-safe.
std::atomic<bool> g_serve_interrupted{false};

void HandleServeSigint(int) { g_serve_interrupted.store(true); }

// ---- Shared dataset flags ------------------------------------------------

struct DatasetFlags {
  std::string* preset = nullptr;
  std::string* scale = nullptr;
  int64_t* seed = nullptr;
  int64_t* episodes = nullptr;
  std::string* data = nullptr;
};

DatasetFlags AddDatasetFlags(ArgParser* parser,
                             const std::string& default_preset) {
  DatasetFlags flags;
  flags.preset = parser->AddString(
      "preset", default_preset,
      "dataset preset (ustc, movielens, traffic-fg, traffic-app, "
      "synthetic-early, synthetic-late)");
  flags.scale = parser->AddString("scale", "tiny",
                                  "experiment scale: tiny|small|full");
  flags.seed = parser->AddInt("seed", 7, "dataset generation seed");
  flags.episodes = parser->AddInt(
      "episodes", 0, "override total episode count (0 = preset default)");
  flags.data = parser->AddString(
      "data", "", "load a dataset directory (kvec generate --out) instead "
                  "of generating from --preset");
  return flags;
}

bool ResolveDataset(const DatasetFlags& flags, Dataset* dataset,
                    std::string* error) {
  if (!flags.data->empty()) {
    return LoadDatasetDir(*flags.data, dataset, error);
  }
  PresetId preset;
  if (!ParsePresetId(*flags.preset, &preset)) {
    *error = "unknown preset '" + *flags.preset +
             "' (see kvec generate --list)";
    return false;
  }
  ExperimentScale scale;
  if (!ParseScale(*flags.scale, &scale)) {
    *error = "--scale must be tiny|small|full, got '" + *flags.scale + "'";
    return false;
  }
  std::unique_ptr<EpisodeGenerator> generator = MakeGenerator(preset, scale);
  SplitCounts counts = *flags.episodes > 0
                           ? SplitCounts::FromTotal(
                                 static_cast<int>(*flags.episodes))
                           : PresetSplitCounts(preset, scale);
  *dataset = GenerateDataset(*generator, counts,
                             static_cast<uint64_t>(*flags.seed));
  return true;
}

const std::vector<TangledSequence>* SplitOf(const Dataset& dataset,
                                            const std::string& name) {
  if (name == "train") return &dataset.train;
  if (name == "validation") return &dataset.validation;
  if (name == "test") return &dataset.test;
  return nullptr;
}

int UsageError(ArgParser& parser, std::ostream& err) {
  err << "kvec: " << parser.error() << "\n" << parser.Usage();
  return kExitUsage;
}

int RuntimeError(const std::string& message, std::ostream& err) {
  err << "kvec: " << message << "\n";
  return kExitRuntime;
}

void EmitSummaryFields(const EvaluationSummary& summary, JsonWriter* json) {
  json->Key("earliness").Double(summary.earliness);
  json->Key("accuracy").Double(summary.accuracy);
  json->Key("macro_precision").Double(summary.macro_precision);
  json->Key("macro_recall").Double(summary.macro_recall);
  json->Key("macro_f1").Double(summary.macro_f1);
  json->Key("harmonic_mean").Double(summary.harmonic_mean);
  json->Key("num_sequences").Int(summary.num_sequences);
}

Table SummaryTable(const EvaluationSummary& summary) {
  Table table({"metric", "value"});
  table.AddRow({"earliness", Table::FormatDouble(summary.earliness)});
  table.AddRow({"accuracy", Table::FormatDouble(summary.accuracy)});
  table.AddRow(
      {"macro_precision", Table::FormatDouble(summary.macro_precision)});
  table.AddRow({"macro_recall", Table::FormatDouble(summary.macro_recall)});
  table.AddRow({"macro_f1", Table::FormatDouble(summary.macro_f1)});
  table.AddRow(
      {"harmonic_mean", Table::FormatDouble(summary.harmonic_mean)});
  table.AddRow({"sequences", std::to_string(summary.num_sequences)});
  return table;
}

// A dataset is servable/evaluable by a model when every embedding lookup
// the items can produce stays inside the model's tables: same field count
// and class count, and no dataset vocabulary wider than the model's (the
// lookups KVEC_CHECK-abort on out-of-range ids, so this guard is what
// turns a mid-run abort into a clean exit-1 diagnostic). Key/position/
// time indices are clamped by the embedding layer and need no check.
bool SpecCompatible(const DatasetSpec& model_spec,
                    const DatasetSpec& data_spec, std::string* why) {
  if (data_spec.num_classes != model_spec.num_classes) {
    *why = "class counts differ";
    return false;
  }
  if (data_spec.num_value_fields() != model_spec.num_value_fields()) {
    *why = "value-field counts differ";
    return false;
  }
  for (int field = 0; field < data_spec.num_value_fields(); ++field) {
    if (data_spec.value_fields[field].vocab_size >
        model_spec.value_fields[field].vocab_size) {
      *why = "dataset vocabulary '" + data_spec.value_fields[field].name +
             "' is wider than the model's";
      return false;
    }
  }
  return true;
}

// Splits "HOST:PORT" for --listen/--connect. Port 0 is legal for --listen
// (kernel-chosen ephemeral port, reported via --port-file).
bool ParseHostPort(const std::string& text, std::string* host,
                   uint16_t* port, std::string* error) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    *error = "expected HOST:PORT, got '" + text + "'";
    return false;
  }
  *host = text.substr(0, colon);
  int64_t value = 0;
  for (size_t i = colon + 1; i < text.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      *error = "port must be numeric in '" + text + "'";
      return false;
    }
    value = value * 10 + (text[i] - '0');
    if (value > 65535) {
      *error = "port out of range in '" + text + "'";
      return false;
    }
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

// ---- kvec generate -------------------------------------------------------

int RunGenerate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  ArgParser parser("kvec generate");
  DatasetFlags dataset_flags = AddDatasetFlags(&parser, "ustc");
  std::string* out_dir =
      parser.AddString("out", "", "output directory for the CSV dataset");
  bool* list = parser.AddBool("list", false, "list all presets and exit");
  bool* json = parser.AddBool("json", false, "emit a JSON summary");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }

  if (*list) {
    Table table({"preset", "alias", "classes", "value fields", "episodes "
                 "(tiny/small/full)"});
    for (const PresetInfo& info : AllPresets()) {
      std::unique_ptr<EpisodeGenerator> generator =
          MakeGenerator(info.id, ExperimentScale::kTiny);
      const DatasetSpec& spec = generator->spec();
      std::ostringstream episodes;
      for (ExperimentScale scale :
           {ExperimentScale::kTiny, ExperimentScale::kSmall,
            ExperimentScale::kFull}) {
        SplitCounts counts = PresetSplitCounts(info.id, scale);
        if (scale != ExperimentScale::kTiny) episodes << "/";
        episodes << (counts.train + counts.validation + counts.test);
      }
      table.AddRow({info.canonical, info.alias,
                    std::to_string(spec.num_classes),
                    std::to_string(spec.num_value_fields()),
                    episodes.str()});
    }
    out << table.ToText();
    return kExitOk;
  }

  if (out_dir->empty()) {
    err << "kvec: generate requires --out <dir> (or --list)\n"
        << parser.Usage();
    return kExitUsage;
  }

  Dataset dataset;
  std::string error;
  if (!ResolveDataset(dataset_flags, &dataset, &error)) {
    return RuntimeError(error, err);
  }
  if (!SaveDatasetDir(*out_dir, dataset, &error)) {
    return RuntimeError(error, err);
  }

  auto items_of = [](const std::vector<TangledSequence>& episodes) {
    int64_t items = 0;
    for (const TangledSequence& episode : episodes) {
      items += static_cast<int64_t>(episode.items.size());
    }
    return items;
  };
  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("dataset").String(dataset.spec.name);
    writer.Key("out").String(*out_dir);
    writer.Key("num_classes").Int(dataset.spec.num_classes);
    writer.Key("value_fields").Int(dataset.spec.num_value_fields());
    writer.Key("splits").BeginObject();
    writer.Key("train").BeginObject();
    writer.Key("episodes").Int(static_cast<int64_t>(dataset.train.size()));
    writer.Key("items").Int(items_of(dataset.train));
    writer.EndObject();
    writer.Key("validation").BeginObject();
    writer.Key("episodes")
        .Int(static_cast<int64_t>(dataset.validation.size()));
    writer.Key("items").Int(items_of(dataset.validation));
    writer.EndObject();
    writer.Key("test").BeginObject();
    writer.Key("episodes").Int(static_cast<int64_t>(dataset.test.size()));
    writer.Key("items").Int(items_of(dataset.test));
    writer.EndObject();
    writer.EndObject();
    writer.EndObject();
    out << writer.str();
  } else {
    out << "wrote " << dataset.spec.name << " to " << *out_dir << ": "
        << dataset.train.size() << " train / " << dataset.validation.size()
        << " validation / " << dataset.test.size() << " test episodes ("
        << items_of(dataset.train) + items_of(dataset.validation) +
               items_of(dataset.test)
        << " items)\n";
  }
  return kExitOk;
}

// ---- kvec train ----------------------------------------------------------

int RunTrain(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  ArgParser parser("kvec train");
  DatasetFlags dataset_flags = AddDatasetFlags(&parser, "ustc");
  std::string* model_path =
      parser.AddString("model", "", "output path of the model bundle");
  int64_t* epochs = parser.AddInt("epochs", 0, "training epochs (0 = config "
                                  "default)");
  int64_t* embed_dim = parser.AddInt("embed-dim", 0, "item embedding width");
  int64_t* state_dim = parser.AddInt("state-dim", 0, "fusion state width");
  int64_t* blocks = parser.AddInt("blocks", 0, "attention blocks");
  int64_t* ffn_dim = parser.AddInt("ffn-dim", 0, "FFN hidden width");
  double* lr = parser.AddDouble("lr", 0.0, "learning rate");
  double* alpha = parser.AddDouble("alpha", -1.0,
                                   "REINFORCE surrogate weight l2");
  double* beta = parser.AddDouble(
      "beta", 0.0, "earliness pressure l3 (larger = earlier halts)");
  int64_t* train_seed =
      parser.AddInt("train-seed", 0, "model init/training seed (0 = config "
                    "default)");
  bool* validate = parser.AddBool(
      "validate", true, "early-stopping model selection on the validation "
      "split");
  bool* json = parser.AddBool("json", false, "emit JSON instead of tables");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }
  if (model_path->empty()) {
    err << "kvec: train requires --model <path>\n" << parser.Usage();
    return kExitUsage;
  }

  Dataset dataset;
  std::string error;
  if (!ResolveDataset(dataset_flags, &dataset, &error)) {
    return RuntimeError(error, err);
  }

  KvecConfig config = KvecConfig::ForSpec(dataset.spec);
  if (*epochs > 0) config.epochs = static_cast<int>(*epochs);
  if (*embed_dim > 0) config.embed_dim = static_cast<int>(*embed_dim);
  if (*state_dim > 0) config.state_dim = static_cast<int>(*state_dim);
  if (*blocks > 0) config.num_blocks = static_cast<int>(*blocks);
  if (*ffn_dim > 0) config.ffn_hidden_dim = static_cast<int>(*ffn_dim);
  if (*lr > 0) {
    config.learning_rate = static_cast<float>(*lr);
    config.baseline_learning_rate = static_cast<float>(*lr);
  }
  if (*alpha >= 0) config.alpha = static_cast<float>(*alpha);
  if (parser.Provided("beta")) config.beta = static_cast<float>(*beta);
  if (*train_seed > 0) config.seed = static_cast<uint64_t>(*train_seed);

  KvecModel model(config);
  KvecTrainer trainer(&model);
  const bool with_validation = *validate && !dataset.validation.empty();
  int best_epoch = -1;
  std::vector<TrainEpochStats> history =
      with_validation
          ? trainer.TrainWithValidation(dataset.train, dataset.validation,
                                        &best_epoch)
          : trainer.Train(dataset.train);
  EvaluationResult result = trainer.Evaluate(dataset.test);

  if (!SaveModelBundle(*model_path, &model)) {
    return RuntimeError("cannot write model bundle '" + *model_path + "'",
                        err);
  }

  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("dataset").String(dataset.spec.name);
    writer.Key("model").String(*model_path);
    writer.Key("parameters").Int(model.ParameterCount());
    writer.Key("epochs").Int(static_cast<int64_t>(history.size()));
    writer.Key("best_epoch").Int(best_epoch);
    writer.Key("history").BeginArray();
    for (const TrainEpochStats& stats : history) {
      writer.BeginObject();
      writer.Key("total_loss").Double(stats.total_loss);
      writer.Key("classification_loss").Double(stats.classification_loss);
      writer.Key("policy_loss").Double(stats.policy_loss);
      writer.Key("earliness_loss").Double(stats.earliness_loss);
      writer.Key("baseline_loss").Double(stats.baseline_loss);
      writer.Key("train_accuracy").Double(stats.train_accuracy);
      writer.Key("train_earliness").Double(stats.train_earliness);
      writer.EndObject();
    }
    writer.EndArray();
    writer.Key("test").BeginObject();
    EmitSummaryFields(result.summary, &writer);
    writer.EndObject();
    writer.EndObject();
    out << writer.str();
  } else {
    Table epochs_table({"epoch", "loss", "l1", "l2", "l3", "baseline",
                        "train_acc", "train_earliness"});
    for (size_t i = 0; i < history.size(); ++i) {
      const TrainEpochStats& stats = history[i];
      epochs_table.AddRow({std::to_string(i + 1),
                           Table::FormatDouble(stats.total_loss),
                           Table::FormatDouble(stats.classification_loss),
                           Table::FormatDouble(stats.policy_loss),
                           Table::FormatDouble(stats.earliness_loss),
                           Table::FormatDouble(stats.baseline_loss),
                           Table::FormatDouble(stats.train_accuracy),
                           Table::FormatDouble(stats.train_earliness)});
    }
    out << epochs_table.ToText();
    if (best_epoch >= 0) {
      out << "selected epoch " << best_epoch + 1
          << " by validation harmonic mean\n";
    }
    out << "\ntest split:\n" << SummaryTable(result.summary).ToText();
    out << "\nmodel bundle (" << model.ParameterCount()
        << " parameters) written to " << *model_path << "\n";
  }
  return kExitOk;
}

// ---- kvec eval -----------------------------------------------------------

int RunEval(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  ArgParser parser("kvec eval");
  DatasetFlags dataset_flags = AddDatasetFlags(&parser, "ustc");
  std::string* model_path =
      parser.AddString("model", "", "model bundle from kvec train");
  std::string* split = parser.AddString(
      "split", "test", "which split to evaluate: train|validation|test");
  bool* json = parser.AddBool("json", false, "emit JSON instead of tables");
  bool* report = parser.AddBool(
      "report", false, "append the per-class classification report");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }
  if (model_path->empty()) {
    err << "kvec: eval requires --model <path>\n" << parser.Usage();
    return kExitUsage;
  }

  std::string error;
  std::unique_ptr<KvecModel> model = LoadModelBundle(*model_path, &error);
  if (model == nullptr) return RuntimeError(error, err);

  Dataset dataset;
  if (!ResolveDataset(dataset_flags, &dataset, &error)) {
    return RuntimeError(error, err);
  }
  const std::vector<TangledSequence>* episodes = SplitOf(dataset, *split);
  if (episodes == nullptr) {
    err << "kvec: --split must be train|validation|test, got '" << *split
        << "'\n";
    return kExitUsage;
  }
  std::string why;
  if (!SpecCompatible(model->config().spec, dataset.spec, &why)) {
    return RuntimeError(
        "dataset '" + dataset.spec.name + "' does not match the model's "
        "spec ('" + model->config().spec.name + "'): " + why,
        err);
  }

  KvecTrainer trainer(model.get());
  EvaluationResult result = trainer.Evaluate(*episodes);
  const std::string report_text =
      *report ? ClassificationReport(result.records, dataset.spec.num_classes)
              : std::string();

  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("dataset").String(dataset.spec.name);
    writer.Key("split").String(*split);
    writer.Key("episodes").Int(static_cast<int64_t>(episodes->size()));
    writer.Key("model").BeginObject();
    writer.Key("path").String(*model_path);
    writer.Key("parameters").Int(model->ParameterCount());
    writer.Key("embed_dim").Int(model->config().embed_dim);
    writer.Key("state_dim").Int(model->config().state_dim);
    writer.Key("num_blocks").Int(model->config().num_blocks);
    writer.EndObject();
    writer.Key("summary").BeginObject();
    EmitSummaryFields(result.summary, &writer);
    writer.EndObject();
    // The report rides inside the document so stdout stays one valid JSON
    // value (`... --json --report | jq .` must keep working).
    if (*report) writer.Key("report").String(report_text);
    writer.EndObject();
    out << writer.str();
  } else {
    out << dataset.spec.name << " / " << *split << " split ("
        << episodes->size() << " episodes):\n"
        << SummaryTable(result.summary).ToText();
    if (*report) out << "\n" << report_text;
  }
  return kExitOk;
}

// ---- kvec sweep ----------------------------------------------------------

MethodSpec* FindMethod(std::vector<MethodSpec>* methods,
                       const std::string& name) {
  std::string needle = name;
  std::transform(needle.begin(), needle.end(), needle.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (MethodSpec& method : *methods) {
    std::string have = method.name;
    std::transform(have.begin(), have.end(), have.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (have == needle) return &method;
  }
  return nullptr;
}

// Evenly subsamples `grid` down to `points` values (endpoints kept).
std::vector<double> SubsampleGrid(const std::vector<double>& grid,
                                  int points) {
  if (points <= 0 || points >= static_cast<int>(grid.size())) return grid;
  std::vector<double> out;
  if (points == 1) {
    out.push_back(grid[grid.size() / 2]);
    return out;
  }
  for (int i = 0; i < points; ++i) {
    size_t index = static_cast<size_t>(
        std::lround(static_cast<double>(i) * (grid.size() - 1) /
                    (points - 1)));
    out.push_back(grid[index]);
  }
  return out;
}

int RunSweep(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  ArgParser parser("kvec sweep");
  std::string* profile = parser.AddString(
      "preset", "paper",
      "sweep profile: smoke (CI-sized end-to-end), paper (full method set "
      "and grids), or a dataset preset name");
  std::string* dataset_name = parser.AddString(
      "dataset", "ustc", "dataset preset for the paper/smoke profiles");
  std::string* scale_text =
      parser.AddString("scale", "tiny", "experiment scale: tiny|small|full");
  int64_t* seed = parser.AddInt("seed", 7, "dataset generation seed");
  int64_t* episodes = parser.AddInt(
      "episodes", 0, "override total episode count (0 = profile default)");
  std::string* methods_text = parser.AddString(
      "methods", "",
      "comma list of methods (kvec, earliest, srn-earliest, srn-fixed, "
      "srn-confidence, prefix-ects, indicator); empty = profile default");
  int64_t* max_grid_points = parser.AddInt(
      "max-grid-points", 0,
      "subsample each method's hyper grid to at most N points (0 = full)");
  int64_t* epochs =
      parser.AddInt("epochs", 0, "override training epochs per grid point");
  std::string* cache_dir = parser.AddString(
      "cache", "", "sweep-cache directory (reuses finished method sweeps)");
  std::string* out_path =
      parser.AddString("out", "", "also write the table to this file");
  bool* csv = parser.AddBool("csv", false, "emit CSV instead of a table");
  bool* json = parser.AddBool("json", false, "emit JSON instead of a table");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }

  // Profile resolution. "smoke" shrinks everything so a cold checkout can
  // prove train→eval→table end-to-end in seconds (the CI docs job runs
  // exactly `kvec sweep --preset smoke`); "paper" is the full Figure-3–7
  // harness; a dataset preset name behaves like paper on that dataset.
  std::string dataset_text = *dataset_name;
  std::vector<std::string> method_names;
  int grid_points = static_cast<int>(*max_grid_points);
  int64_t total_episodes = *episodes;
  const bool smoke = *profile == "smoke";
  if (smoke) {
    method_names = {"kvec", "prefix-ects", "indicator"};
    if (grid_points == 0) grid_points = 2;
    if (total_episodes == 0) total_episodes = 30;
  } else if (*profile != "paper") {
    PresetId ignored;
    if (!ParsePresetId(*profile, &ignored)) {
      err << "kvec: --preset must be smoke, paper, or a dataset preset, "
             "got '" << *profile << "'\n";
      return kExitUsage;
    }
    dataset_text = *profile;
  }
  if (!methods_text->empty()) method_names = SplitCommaList(*methods_text);

  PresetId preset;
  if (!ParsePresetId(dataset_text, &preset)) {
    err << "kvec: unknown dataset preset '" << dataset_text << "'\n";
    return kExitUsage;
  }
  ExperimentScale scale;
  if (!ParseScale(*scale_text, &scale)) {
    err << "kvec: --scale must be tiny|small|full, got '" << *scale_text
        << "'\n";
    return kExitUsage;
  }

  std::unique_ptr<EpisodeGenerator> generator = MakeGenerator(preset, scale);
  SplitCounts counts =
      total_episodes > 0
          ? SplitCounts::FromTotal(static_cast<int>(total_episodes))
          : PresetSplitCounts(preset, scale);
  Dataset dataset = GenerateDataset(*generator, counts,
                                    static_cast<uint64_t>(*seed));

  MethodRunOptions options = MethodRunOptions::ForScale(scale);
  if (smoke) {
    // CI-sized: two epochs of a one-block model per grid point.
    options.epochs = 2;
    options.embed_dim = 12;
    options.state_dim = 16;
    options.num_blocks = 1;
    options.ffn_hidden_dim = 24;
  }
  if (*epochs > 0) options.epochs = static_cast<int>(*epochs);
  options.seed = static_cast<uint64_t>(*seed);

  std::vector<MethodSpec> all = AllMethodsExtended();
  std::vector<MethodSpec> selected;
  if (method_names.empty()) {
    // paper profile: the five methods of Figures 3–7, KVEC first.
    for (const MethodSpec& method : AllMethods()) selected.push_back(method);
  } else {
    // CLI aliases match the lowercased method names except the two
    // classical references.
    std::map<std::string, std::string> aliases = {
        {"prefix-ects", "Prefix-ECTS"}, {"indicator", "Indicator"}};
    for (const std::string& name : method_names) {
      auto alias = aliases.find(name);
      MethodSpec* method =
          FindMethod(&all, alias != aliases.end() ? alias->second : name);
      if (method == nullptr) {
        err << "kvec: unknown method '" << name << "'\n";
        return kExitUsage;
      }
      selected.push_back(*method);
    }
  }

  std::vector<SweepPoint> points;
  for (MethodSpec method : selected) {
    method.grid = SubsampleGrid(method.grid, grid_points);
    auto compute = [&]() { return RunMethodSweep(method, dataset, options); };
    std::vector<SweepPoint> method_points;
    if (!cache_dir->empty()) {
      SweepCache cache(*cache_dir);
      // The key must pin everything that shapes the numbers: dataset
      // recipe (preset/scale/seed/episode override) AND the model recipe
      // (epochs, dims — the smoke profile shrinks them), or different
      // invocations silently reuse each other's results.
      std::ostringstream key;
      key << PresetName(preset) << "-" << ScaleName(scale) << "-seed"
          << *seed << "-n" << total_episodes << "-ep" << options.epochs
          << "-d" << options.embed_dim << "x" << options.state_dim << "x"
          << options.num_blocks << "x" << options.ffn_hidden_dim << "-g"
          << method.grid.size() << "-" << method.name;
      method_points = cache.LoadOrCompute(key.str(), compute);
    } else {
      method_points = compute();
    }
    points.insert(points.end(), method_points.begin(), method_points.end());
  }

  Table table = SweepToTable(points);
  std::string rendered;
  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("dataset").String(dataset.spec.name);
    writer.Key("scale").String(ScaleName(scale));
    writer.Key("profile").String(*profile);
    writer.Key("points").BeginArray();
    for (const SweepPoint& point : points) {
      writer.BeginObject();
      writer.Key("method").String(point.method);
      writer.Key("hyper").Double(point.hyper);
      writer.Key("earliness").Double(point.earliness);
      writer.Key("accuracy").Double(point.accuracy);
      writer.Key("precision").Double(point.precision);
      writer.Key("recall").Double(point.recall);
      writer.Key("f1").Double(point.f1);
      writer.Key("harmonic_mean").Double(point.harmonic_mean);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
    rendered = writer.str();
  } else if (*csv) {
    rendered = table.ToCsv();
  } else {
    rendered = table.ToText();
  }
  out << rendered;
  if (!out_path->empty()) {
    std::string error;
    if (!WriteTextFile(*out_path, *csv || *json ? rendered : table.ToCsv(),
                       &error)) {
      return RuntimeError(error, err);
    }
  }
  return kExitOk;
}

// ---- kvec serve / kvec bench --------------------------------------------

// All episodes of a split interleaved round-robin with globally unique
// keys — a router serving many tenants at once rather than one episode at
// a time (the idiom of examples/sharded_router.cpp). `truth` receives
// global key -> true label.
std::vector<Item> InterleaveEpisodes(
    const std::vector<TangledSequence>& episodes, int key_stride,
    std::map<int, int>* truth) {
  std::vector<Item> stream;
  size_t longest = 0;
  int64_t total = 0;
  for (const TangledSequence& episode : episodes) {
    longest = std::max(longest, episode.items.size());
    total += static_cast<int64_t>(episode.items.size());
  }
  stream.reserve(total);
  for (size_t position = 0; position < longest; ++position) {
    int offset = 0;
    for (const TangledSequence& episode : episodes) {
      if (position < episode.items.size()) {
        Item item = episode.items[position];
        const int global_key = item.key + offset;
        (*truth)[global_key] = episode.labels.at(item.key);
        item.key = global_key;
        stream.push_back(std::move(item));
      }
      offset += key_stride;
    }
  }
  return stream;
}

struct ServeOutcome {
  int64_t items = 0;
  int64_t correct = 0;
  int64_t labelled = 0;
  double seconds = 0.0;
  StreamServerStats stats;
  int open_keys_after = 0;
  bool interrupted = false;
  bool checkpoint_failed = false;  // a periodic checkpoint could not be written
  // Per-shard views (workers/sharded mode only) for the SIGINT report.
  std::vector<StreamServerStats> per_shard;
};

// Thread-safe verdict-accuracy accumulator: the shard workers deliver
// Submit-path events concurrently through the on_events sink.
struct EventRecorder {
  const std::map<int, int>* truth = nullptr;
  Mutex mutex;
  int64_t correct KVEC_GUARDED_BY(mutex) = 0;
  int64_t labelled KVEC_GUARDED_BY(mutex) = 0;

  void Record(const std::vector<StreamEvent>& events) KVEC_EXCLUDES(mutex) {
    int64_t batch_correct = 0;
    int64_t batch_labelled = 0;
    for (const StreamEvent& event : events) {
      auto it = truth->find(event.key);
      if (it != truth->end()) {
        ++batch_labelled;
        if (event.predicted_label == it->second) ++batch_correct;
      }
    }
    MutexLock lock(mutex);
    correct += batch_correct;
    labelled += batch_labelled;
  }
};

void EmitServeJson(const ServeOutcome& outcome, int shards, int workers,
                   int batch, JsonWriter* writer) {
  writer->Key("items").Int(outcome.items);
  writer->Key("shards").Int(shards);
  writer->Key("workers").Int(workers);
  writer->Key("batch").Int(batch);
  writer->Key("seconds").Double(outcome.seconds);
  writer->Key("items_per_sec")
      .Double(outcome.seconds > 0 ? outcome.items / outcome.seconds : 0.0, 1);
  writer->Key("serving_accuracy")
      .Double(outcome.labelled > 0
                  ? static_cast<double>(outcome.correct) / outcome.labelled
                  : 0.0);
  writer->Key("open_keys_after").Int(outcome.open_keys_after);
  writer->Key("interrupted").Bool(outcome.interrupted);
  writer->Key("overload").BeginObject();
  writer->Key("items_submitted").Int(outcome.stats.items_submitted);
  writer->Key("batches_shed").Int(outcome.stats.batches_shed);
  writer->Key("items_shed").Int(outcome.stats.items_shed);
  writer->EndObject();
  writer->Key("memory").BeginObject();
  writer->Key("bytes_resident").Int(outcome.stats.bytes_resident);
  writer->Key("pool_blocks").Int(outcome.stats.pool_blocks);
  writer->Key("scratch_high_water").Int(outcome.stats.scratch_high_water);
  writer->Key("compactions").Int(outcome.stats.compactions);
  writer->EndObject();
  writer->Key("events").BeginObject();
  writer->Key("sequences_classified").Int(outcome.stats.sequences_classified);
  writer->Key("policy_halts").Int(outcome.stats.policy_halts);
  writer->Key("idle_timeouts").Int(outcome.stats.idle_timeouts);
  writer->Key("capacity_evictions").Int(outcome.stats.capacity_evictions);
  writer->Key("rotation_classifications")
      .Int(outcome.stats.rotation_classifications);
  writer->Key("flush_classifications")
      .Int(outcome.stats.flush_classifications);
  writer->Key("windows_started").Int(outcome.stats.windows_started);
  writer->EndObject();
}

Table ServeTable(const ServeOutcome& outcome) {
  Table table({"stat", "value"});
  table.AddRow({"items", std::to_string(outcome.items)});
  table.AddRow({"seconds", Table::FormatDouble(outcome.seconds)});
  table.AddRow(
      {"items/sec",
       Table::FormatDouble(
           outcome.seconds > 0 ? outcome.items / outcome.seconds : 0.0, 1)});
  table.AddRow(
      {"serving accuracy",
       Table::FormatDouble(outcome.labelled > 0
                               ? static_cast<double>(outcome.correct) /
                                     outcome.labelled
                               : 0.0)});
  table.AddRow({"sequences classified",
                std::to_string(outcome.stats.sequences_classified)});
  table.AddRow({"  policy halts", std::to_string(outcome.stats.policy_halts)});
  table.AddRow(
      {"  idle timeouts", std::to_string(outcome.stats.idle_timeouts)});
  table.AddRow({"  capacity evictions",
                std::to_string(outcome.stats.capacity_evictions)});
  table.AddRow({"  rotation closes",
                std::to_string(outcome.stats.rotation_classifications)});
  table.AddRow({"  flush closes",
                std::to_string(outcome.stats.flush_classifications)});
  table.AddRow(
      {"windows started", std::to_string(outcome.stats.windows_started)});
  table.AddRow({"open keys after", std::to_string(outcome.open_keys_after)});
  table.AddRow(
      {"items submitted", std::to_string(outcome.stats.items_submitted)});
  table.AddRow({"batches shed", std::to_string(outcome.stats.batches_shed)});
  table.AddRow({"items shed", std::to_string(outcome.stats.items_shed)});
  table.AddRow(
      {"bytes resident", std::to_string(outcome.stats.bytes_resident)});
  table.AddRow({"pool blocks", std::to_string(outcome.stats.pool_blocks)});
  table.AddRow({"scratch high water",
                std::to_string(outcome.stats.scratch_high_water)});
  table.AddRow({"compactions", std::to_string(outcome.stats.compactions)});
  return table;
}

// The SIGINT report: one row per shard so an operator can see which shard
// was hot (or shedding) when the process was asked to stop.
Table PerShardTable(const std::vector<StreamServerStats>& per_shard) {
  Table table({"shard", "processed", "classified", "submitted", "shed items",
               "shed batches", "resident bytes", "compactions"});
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const StreamServerStats& stats = per_shard[s];
    table.AddRow({std::to_string(s), std::to_string(stats.items_processed),
                  std::to_string(stats.sequences_classified),
                  std::to_string(stats.items_submitted),
                  std::to_string(stats.items_shed),
                  std::to_string(stats.batches_shed),
                  std::to_string(stats.bytes_resident),
                  std::to_string(stats.compactions)});
  }
  return table;
}

// Replays `stream` through a server built from the flags (synchronous
// ingest: events come back from Observe/ObserveBatch). Shared by serve and
// bench so the two subcommands cannot drift apart in semantics. Polls the
// SIGINT flag at batch boundaries; on interrupt the rest of the stream is
// skipped and no flush runs (keys stay open for --save-checkpoint).
// Invoked at batch boundaries with the cumulative item count; returning
// false aborts the replay (the periodic checkpoint could not be written).
using ReplayTick = std::function<bool(int64_t fed)>;

template <typename Server>
ServeOutcome ReplayStream(Server& server, const std::vector<Item>& stream,
                          int batch, bool flush,
                          const std::map<int, int>& truth,
                          const ReplayTick& tick = nullptr) {
  ServeOutcome outcome;
  auto record = [&](const std::vector<StreamEvent>& events) {
    for (const StreamEvent& event : events) {
      auto it = truth.find(event.key);
      if (it != truth.end()) {
        ++outcome.labelled;
        if (event.predicted_label == it->second) ++outcome.correct;
      }
    }
  };
  const auto start = std::chrono::steady_clock::now();
  int64_t fed = 0;
  if (batch <= 1) {
    for (const Item& item : stream) {
      if (g_serve_interrupted.load()) break;
      (void)KVEC_FAULT_POINT("serve.batch");
      record(server.Observe(item));
      ++fed;
      if (tick && !tick(fed)) {
        outcome.checkpoint_failed = true;
        break;
      }
    }
  } else {
    for (size_t begin = 0; begin < stream.size();
         begin += static_cast<size_t>(batch)) {
      if (g_serve_interrupted.load()) break;
      (void)KVEC_FAULT_POINT("serve.batch");
      size_t end = std::min(stream.size(), begin + static_cast<size_t>(batch));
      record(server.ObserveBatch(
          std::vector<Item>(stream.begin() + begin, stream.begin() + end)));
      fed += static_cast<int64_t>(end - begin);
      if (tick && !tick(fed)) {
        outcome.checkpoint_failed = true;
        break;
      }
    }
  }
  outcome.interrupted = g_serve_interrupted.load();
  if (flush && !outcome.interrupted) record(server.Flush());
  const auto stop = std::chrono::steady_clock::now();
  outcome.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  outcome.items = fed;
  outcome.stats = server.stats();
  outcome.open_keys_after = server.open_keys();
  return outcome;
}

// The overload-policy replay: fire-and-forget Submit into the shard
// workers, events recorded by `recorder` through the on_events sink.
// Throughput reported over *processed* items (offered minus shed), from
// the items_processed delta so a --load-checkpoint baseline is excluded.
ServeOutcome ReplaySubmitStream(ShardedStreamServer& server,
                                EventRecorder* recorder,
                                const std::vector<Item>& stream, int batch,
                                bool flush, const ReplayTick& tick = nullptr) {
  ServeOutcome outcome;
  const int64_t processed_before = server.stats().items_processed;
  const size_t step = static_cast<size_t>(std::max(1, batch));
  const auto start = std::chrono::steady_clock::now();
  int64_t offered = 0;
  for (size_t begin = 0; begin < stream.size(); begin += step) {
    if (g_serve_interrupted.load()) break;
    (void)KVEC_FAULT_POINT("serve.batch");
    size_t end = std::min(stream.size(), begin + step);
    server.Submit(
        std::vector<Item>(stream.begin() + begin, stream.begin() + end));
    offered += static_cast<int64_t>(end - begin);
    // The periodic checkpoint runs as a shard control task, so it is safe
    // to take while the workers keep draining their queues.
    if (tick && !tick(offered)) {
      outcome.checkpoint_failed = true;
      break;
    }
  }
  server.Drain();
  outcome.interrupted = g_serve_interrupted.load();
  if (flush && !outcome.interrupted) recorder->Record(server.Flush());
  const auto stop = std::chrono::steady_clock::now();
  outcome.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  outcome.stats = server.stats();
  outcome.items = outcome.stats.items_processed - processed_before;
  outcome.open_keys_after = server.open_keys();
  {
    MutexLock lock(recorder->mutex);
    outcome.correct = recorder->correct;
    outcome.labelled = recorder->labelled;
  }
  return outcome;
}

// Restores the previous SIGINT disposition on every exit path (including
// the RuntimeError early returns inside the replay loop).
struct SigintScope {
  explicit SigintScope(bool install) : active(install) {
    if (active) {
      g_serve_interrupted.store(false);
      previous = std::signal(SIGINT, HandleServeSigint);
    }
  }
  ~SigintScope() {
    if (active) std::signal(SIGINT, previous);
  }
  bool active;
  void (*previous)(int) = SIG_DFL;
};

// ---- kvec serve --listen (TCP front end) ---------------------------------

struct ListenOptions {
  std::string listen;     // HOST:PORT, port 0 = ephemeral
  std::string port_file;  // written with the bound port, for scripts
  int max_connections = 64;
  uint32_t max_frame_bytes = net::kDefaultMaxFrameBytes;
  int idle_timeout_ms = 30000;
};

// Serves over TCP until SIGINT, then drains in order: stop accepting →
// drain connections (buffered requests still answered) → drain shard
// queues → optional flush → optional checkpoint → exit 130. The replay
// flags' dataset is only used for the model and its hello-shape here; the
// stream itself arrives over the wire.
int RunListenServe(const KvecModel& model,
                   const ShardedStreamServerConfig& sharded_config,
                   const ListenOptions& options,
                   const std::string& load_checkpoint,
                   const std::string& save_checkpoint, bool flush, bool json,
                   std::ostream& out, std::ostream& err) {
  std::string host;
  uint16_t port = 0;
  std::string error;
  if (!ParseHostPort(options.listen, &host, &port, &error)) {
    err << "kvec: --listen: " << error << "\n";
    return kExitUsage;
  }
  ShardedStreamServer server(model, sharded_config);
  if (!load_checkpoint.empty() && !server.LoadCheckpoint(load_checkpoint)) {
    return RuntimeError("cannot restore checkpoint '" + load_checkpoint + "'",
                        err);
  }
  net::TcpIngestServerConfig net_config;
  net_config.host = host;
  net_config.port = port;
  net_config.max_connections = options.max_connections;
  net_config.max_frame_bytes = options.max_frame_bytes;
  net_config.idle_timeout_ms = options.idle_timeout_ms;
  net_config.num_value_fields = model.config().spec.num_value_fields();
  net_config.num_classes = model.config().spec.num_classes;
  net::TcpIngestServer tcp(&server, net_config);
  if (!tcp.Start(&error)) return RuntimeError(error, err);
  // The listen line goes to stderr so --json stdout stays pure JSON;
  // scripts should use --port-file rather than parsing this.
  err << "kvec: listening on " << host << ":" << tcp.port() << "\n";
  if (!options.port_file.empty()) {
    std::ofstream port_file(options.port_file);
    port_file << tcp.port() << "\n";
    if (!port_file) {
      return RuntimeError("cannot write port file '" + options.port_file + "'",
                          err);
    }
  }

  const int64_t processed_before = server.stats().items_processed;
  const auto start = std::chrono::steady_clock::now();
  while (!g_serve_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  tcp.Shutdown();
  server.Drain();
  int64_t flush_events = 0;
  if (flush) flush_events = static_cast<int64_t>(server.Flush().size());
  const auto stop = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  const StreamServerStats stats = server.stats();
  const net::TcpIngestServerStats net_stats = tcp.stats();
  if (!save_checkpoint.empty() && !server.SaveCheckpoint(save_checkpoint)) {
    return RuntimeError("cannot write checkpoint '" + save_checkpoint + "'",
                        err);
  }

  if (json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("listen").String(host + ":" + std::to_string(tcp.port()));
    writer.Key("seconds").Double(seconds);
    writer.Key("items_processed").Int(stats.items_processed -
                                      processed_before);
    writer.Key("flush_events").Int(flush_events);
    writer.Key("interrupted").Bool(true);
    writer.Key("overload").BeginObject();
    writer.Key("items_submitted").Int(stats.items_submitted);
    writer.Key("batches_shed").Int(stats.batches_shed);
    writer.Key("items_shed").Int(stats.items_shed);
    writer.EndObject();
    writer.Key("memory").BeginObject();
    writer.Key("bytes_resident").Int(stats.bytes_resident);
    writer.Key("pool_blocks").Int(stats.pool_blocks);
    writer.Key("scratch_high_water").Int(stats.scratch_high_water);
    writer.Key("compactions").Int(stats.compactions);
    writer.EndObject();
    writer.Key("net").BeginObject();
    writer.Key("connections_accepted").Int(net_stats.connections_accepted);
    writer.Key("connections_rejected").Int(net_stats.connections_rejected);
    writer.Key("connections_evicted_idle")
        .Int(net_stats.connections_evicted_idle);
    writer.Key("frames_received").Int(net_stats.frames_received);
    writer.Key("frames_malformed").Int(net_stats.frames_malformed);
    writer.Key("batches_ingested").Int(net_stats.batches_ingested);
    writer.Key("items_accepted").Int(net_stats.items_accepted);
    writer.Key("items_shed").Int(net_stats.items_shed);
    writer.Key("errors_sent").Int(net_stats.errors_sent);
    writer.EndObject();
    writer.Key("events").BeginObject();
    writer.Key("sequences_classified").Int(stats.sequences_classified);
    writer.Key("flush_classifications").Int(stats.flush_classifications);
    writer.EndObject();
    writer.EndObject();
    out << writer.str();
  } else {
    out << "interrupted: drained connections and shard queues\n";
    Table table({"stat", "value"});
    table.AddRow({"seconds", Table::FormatDouble(seconds)});
    table.AddRow({"items processed",
                  std::to_string(stats.items_processed - processed_before)});
    table.AddRow({"sequences classified",
                  std::to_string(stats.sequences_classified)});
    table.AddRow({"items submitted", std::to_string(stats.items_submitted)});
    table.AddRow({"items shed", std::to_string(stats.items_shed)});
    table.AddRow({"bytes resident", std::to_string(stats.bytes_resident)});
    table.AddRow({"compactions", std::to_string(stats.compactions)});
    table.AddRow({"flush events", std::to_string(flush_events)});
    table.AddRow({"connections accepted",
                  std::to_string(net_stats.connections_accepted)});
    table.AddRow({"connections rejected",
                  std::to_string(net_stats.connections_rejected)});
    table.AddRow({"idle evictions",
                  std::to_string(net_stats.connections_evicted_idle)});
    table.AddRow(
        {"frames received", std::to_string(net_stats.frames_received)});
    table.AddRow(
        {"frames malformed", std::to_string(net_stats.frames_malformed)});
    table.AddRow({"error frames sent", std::to_string(net_stats.errors_sent)});
    out << table.ToText();
  }
  return kExitInterrupted;
}

int RunServeOrBench(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err, bool bench) {
  ArgParser parser(bench ? "kvec bench" : "kvec serve");
  DatasetFlags dataset_flags = AddDatasetFlags(&parser, "ustc");
  std::string* model_path = parser.AddString(
      "model", "", "model bundle from kvec train (empty = train a throwaway "
                   "model on the fly)");
  std::string* split = parser.AddString(
      "split", "test", "which split to replay: train|validation|test");
  int64_t* shards = parser.AddInt(
      "shards", 1, "serve through a ShardedStreamServer with N shards");
  int64_t workers_default = 0;
  if (const char* env = std::getenv("KVEC_SHARD_WORKERS")) {
    workers_default = std::atoll(env);
  }
  int64_t* workers = parser.AddInt(
      "workers", workers_default,
      "shard-owned worker threads (0 = synchronous ingest; N>0 = one worker "
      "per shard, implies --shards N; default from KVEC_SHARD_WORKERS)");
  int64_t* queue_depth = parser.AddInt(
      "queue-depth", 256,
      "per-shard bounded task-queue capacity, in batches (workers mode)");
  std::string* overload_policy_text = parser.AddString(
      "overload-policy", "block",
      "full-queue behavior in workers mode: block|shed-newest|shed-oldest");
  int64_t* batch = parser.AddInt(
      "batch", 64, "microbatch size for ObserveBatch (1 = item at a time)");
  int64_t* max_window = parser.AddInt(
      "max-window-items", 4096, "engine rebuild period in stream items");
  int64_t* idle_timeout = parser.AddInt(
      "idle-timeout", 512, "evict keys idle for this many stream positions");
  int64_t* max_open_keys =
      parser.AddInt("max-open-keys", 1024, "open-key capacity per shard");
  int64_t* compaction_interval = parser.AddInt(
      "compaction-check-interval", 4096,
      "per-shard items between pool-fragmentation checks (<=0 disables "
      "automatic compaction)");
  double* compaction_threshold = parser.AddDouble(
      "compaction-threshold", 2.0,
      "compact a shard pool when resident/live bytes exceed this ratio");
  int64_t* compaction_min_bytes = parser.AddInt(
      "compaction-min-bytes", 4 << 20,
      "never compact pools smaller than this many resident bytes");
  bool* flush = parser.AddBool(
      "flush", true, "force-classify still-open keys at end of stream");
  std::string* load_checkpoint = parser.AddString(
      "load-checkpoint", "", "restore serving state before the replay");
  std::string* save_checkpoint = parser.AddString(
      "save-checkpoint", "", "snapshot serving state after the replay");
  int64_t* checkpoint_every =
      bench ? nullptr
            : parser.AddInt(
                  "checkpoint-every", 0,
                  "write an incremental checkpoint (delta chain next to "
                  "--save-checkpoint) every N replayed items (0 = off)");
  int64_t* rebase_every =
      bench ? nullptr
            : parser.AddInt(
                  "rebase-every", 8,
                  "fold the delta chain into a fresh full base after this "
                  "many deltas (0 = never rebase)");
  int64_t* repeat =
      bench ? parser.AddInt("repeat", 3, "measured repetitions") : nullptr;
  // The TCP front end is a serve-only mode (bench measures local replay).
  // Env knobs mirror KVEC_SHARD_WORKERS: flag > env > built-in default.
  int64_t max_frame_default = net::kDefaultMaxFrameBytes;
  if (const char* env = std::getenv("KVEC_NET_MAX_FRAME_BYTES")) {
    max_frame_default = std::atoll(env);
  }
  int64_t net_idle_default = 30000;
  if (const char* env = std::getenv("KVEC_NET_IDLE_TIMEOUT_MS")) {
    net_idle_default = std::atoll(env);
  }
  std::string* listen =
      bench ? nullptr
            : parser.AddString(
                  "listen", "",
                  "serve over TCP on HOST:PORT instead of replaying locally "
                  "(port 0 = kernel-chosen, see --port-file); SIGINT drains "
                  "and exits 130");
  std::string* port_file =
      bench ? nullptr
            : parser.AddString("port-file", "",
                               "write the bound TCP port to this file once "
                               "listening (for scripts using --listen ...:0)");
  int64_t* max_connections =
      bench ? nullptr
            : parser.AddInt("max-connections", 64,
                            "TCP connection cap; excess connections get an "
                            "OVERLOADED error frame");
  int64_t* max_frame_bytes =
      bench ? nullptr
            : parser.AddInt("max-frame-bytes", max_frame_default,
                            "reject frames with larger payloads as MALFORMED "
                            "(default from KVEC_NET_MAX_FRAME_BYTES)");
  int64_t* net_idle_timeout =
      bench ? nullptr
            : parser.AddInt("net-idle-timeout-ms", net_idle_default,
                            "evict connections that complete no frame for "
                            "this long (default from KVEC_NET_IDLE_TIMEOUT_MS)");
  bool* json = parser.AddBool("json", false, "emit JSON instead of tables");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }

  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  if (!ParseOverloadPolicy(*overload_policy_text, &overload_policy)) {
    err << "kvec: --overload-policy must be block|shed-newest|shed-oldest, "
           "got '"
        << *overload_policy_text << "'\n";
    return kExitUsage;
  }
  if (*workers < 0) {
    err << "kvec: --workers must be >= 0, got " << *workers << "\n";
    return kExitUsage;
  }
  if (*queue_depth <= 0) {
    err << "kvec: --queue-depth must be > 0, got " << *queue_depth << "\n";
    return kExitUsage;
  }
  if (*workers > 0) {
    // The worker model is one owned thread per shard: --workers N alone
    // means N shards; an explicit conflicting --shards is an error, not a
    // silent override.
    if (!parser.Provided("shards")) {
      *shards = *workers;
    } else if (*shards != *workers) {
      err << "kvec: --workers must equal --shards (one owned worker per "
             "shard), got --workers "
          << *workers << " --shards " << *shards << "\n";
      return kExitUsage;
    }
  }
  const int64_t ckpt_every =
      checkpoint_every != nullptr ? *checkpoint_every : 0;
  const int64_t ckpt_rebase = rebase_every != nullptr ? *rebase_every : 0;
  if (ckpt_every < 0 || ckpt_rebase < 0) {
    err << "kvec: --checkpoint-every and --rebase-every must be >= 0\n";
    return kExitUsage;
  }
  if (ckpt_every > 0 && save_checkpoint->empty()) {
    err << "kvec: --checkpoint-every needs --save-checkpoint as the base "
           "path of the delta chain\n";
    return kExitUsage;
  }
  if (ckpt_every > 0 && listen != nullptr && !listen->empty()) {
    err << "kvec: --checkpoint-every applies to local replay, not --listen\n";
    return kExitUsage;
  }

  Dataset dataset;
  std::string error;
  if (!ResolveDataset(dataset_flags, &dataset, &error)) {
    return RuntimeError(error, err);
  }

  std::unique_ptr<KvecModel> model;
  if (!model_path->empty()) {
    model = LoadModelBundle(*model_path, &error);
    if (model == nullptr) return RuntimeError(error, err);
    std::string why;
    if (!SpecCompatible(model->config().spec, dataset.spec, &why)) {
      return RuntimeError("dataset does not match the model's spec: " + why,
                          err);
    }
  } else {
    // Serving demos should work from a cold start: train a small throwaway
    // model so the verdict stream is meaningful.
    KvecConfig config = KvecConfig::ForSpec(dataset.spec);
    config.embed_dim = 16;
    config.state_dim = 24;
    config.num_blocks = 1;
    config.ffn_hidden_dim = 32;
    config.epochs = 4;
    model = std::make_unique<KvecModel>(config);
    KvecTrainer trainer(model.get());
    trainer.Train(dataset.train);
  }

  const std::vector<TangledSequence>* episodes = SplitOf(dataset, *split);
  if (episodes == nullptr) {
    err << "kvec: --split must be train|validation|test, got '" << *split
        << "'\n";
    return kExitUsage;
  }
  std::map<int, int> truth;
  std::vector<Item> stream = InterleaveEpisodes(
      *episodes, dataset.spec.max_keys_per_episode, &truth);

  StreamServerConfig server_config;
  server_config.max_window_items = static_cast<int>(*max_window);
  server_config.idle_timeout = static_cast<int>(*idle_timeout);
  server_config.max_open_keys = static_cast<int>(*max_open_keys);
  server_config.compaction_check_interval =
      static_cast<int>(*compaction_interval);
  server_config.compaction_fragmentation_threshold = *compaction_threshold;
  server_config.compaction_min_bytes = *compaction_min_bytes;

  if (listen != nullptr && !listen->empty()) {
    if (*max_connections <= 0) {
      err << "kvec: --max-connections must be > 0, got " << *max_connections
          << "\n";
      return kExitUsage;
    }
    if (*max_frame_bytes <= 0 || *max_frame_bytes > (1LL << 31)) {
      err << "kvec: --max-frame-bytes must be in (0, 2^31], got "
          << *max_frame_bytes << "\n";
      return kExitUsage;
    }
    if (*net_idle_timeout <= 0) {
      err << "kvec: --net-idle-timeout-ms must be > 0, got "
          << *net_idle_timeout << "\n";
      return kExitUsage;
    }
    ShardedStreamServerConfig sharded_config;
    sharded_config.num_shards = static_cast<int>(*shards);
    sharded_config.worker_threads = static_cast<int>(*workers);
    sharded_config.queue_depth = static_cast<int>(*queue_depth);
    sharded_config.overload_policy = overload_policy;
    sharded_config.shard = server_config;
    ListenOptions options;
    options.listen = *listen;
    options.port_file = *port_file;
    options.max_connections = static_cast<int>(*max_connections);
    options.max_frame_bytes = static_cast<uint32_t>(*max_frame_bytes);
    options.idle_timeout_ms = static_cast<int>(*net_idle_timeout);
    SigintScope listen_sigint(true);
    return RunListenServe(*model, sharded_config, options, *load_checkpoint,
                          *save_checkpoint, *flush, *json, out, err);
  }

  const int runs = bench ? std::max<int>(1, static_cast<int>(*repeat)) : 1;
  // serve handles SIGINT gracefully (drain, per-shard report, checkpoint,
  // exit 130); bench keeps the default disposition so a Ctrl-C kills it.
  SigintScope sigint_scope(!bench);
  std::vector<ServeOutcome> outcomes;
  for (int run = 0; run < runs; ++run) {
    ServeOutcome outcome;
    if (*shards > 1 || *workers > 0 || ckpt_every > 0) {
      EventRecorder recorder;
      recorder.truth = &truth;
      ShardedStreamServerConfig sharded_config;
      sharded_config.num_shards = static_cast<int>(*shards);
      sharded_config.worker_threads = static_cast<int>(*workers);
      sharded_config.queue_depth = static_cast<int>(*queue_depth);
      sharded_config.overload_policy = overload_policy;
      if (*workers > 0) {
        sharded_config.on_events =
            [&recorder](int /*shard*/, const std::vector<StreamEvent>& events) {
              recorder.Record(events);
            };
      }
      sharded_config.shard = server_config;
      ShardedStreamServer server(*model, sharded_config);
      ShardedStreamServer::IncrementalCheckpointState inc_state;
      if (!load_checkpoint->empty()) {
        // With incremental checkpointing on, the load path is the head of a
        // delta chain; loading the same path we save to resumes the chain
        // in place instead of rebasing from scratch.
        const bool ok =
            ckpt_every > 0
                ? server.RestoreFromCheckpointChain(
                      *load_checkpoint, *load_checkpoint == *save_checkpoint
                                            ? &inc_state
                                            : nullptr)
                : server.LoadCheckpoint(*load_checkpoint);
        if (!ok) {
          return RuntimeError(
              "cannot restore checkpoint '" + *load_checkpoint + "'", err);
        }
      }
      ReplayTick tick;
      if (ckpt_every > 0) {
        tick = [&server, &inc_state, &save_checkpoint, ckpt_every, ckpt_rebase,
                next = ckpt_every](int64_t fed) mutable {
          if (fed < next) return true;
          while (next <= fed) next += ckpt_every;
          return server.CheckpointIncremental(*save_checkpoint, ckpt_rebase,
                                              &inc_state);
        };
      }
      outcome = *workers > 0
                    ? ReplaySubmitStream(server, &recorder, stream,
                                         static_cast<int>(*batch), *flush,
                                         tick)
                    : ReplayStream(server, stream, static_cast<int>(*batch),
                                   *flush, truth, tick);
      outcome.per_shard.reserve(server.num_shards());
      for (int s = 0; s < server.num_shards(); ++s) {
        outcome.per_shard.push_back(server.shard_stats(s));
      }
      if (outcome.checkpoint_failed) {
        return RuntimeError("cannot write incremental checkpoint chain at '" +
                                *save_checkpoint + "'",
                            err);
      }
      if (!save_checkpoint->empty()) {
        // A final incremental write puts the flush results on the chain;
        // a plain save would orphan the chain's fingerprints.
        const bool saved =
            ckpt_every > 0
                ? server.CheckpointIncremental(*save_checkpoint, ckpt_rebase,
                                               &inc_state)
                : server.SaveCheckpoint(*save_checkpoint);
        if (!saved) {
          return RuntimeError(
              "cannot write checkpoint '" + *save_checkpoint + "'", err);
        }
      }
    } else {
      StreamServer server(*model, server_config);
      if (!load_checkpoint->empty() &&
          !server.LoadCheckpoint(*load_checkpoint)) {
        return RuntimeError(
            "cannot restore checkpoint '" + *load_checkpoint + "'", err);
      }
      outcome = ReplayStream(server, stream, static_cast<int>(*batch),
                             *flush, truth);
      if (!save_checkpoint->empty() &&
          !server.SaveCheckpoint(*save_checkpoint)) {
        return RuntimeError(
            "cannot write checkpoint '" + *save_checkpoint + "'", err);
      }
    }
    const bool interrupted = outcome.interrupted;
    outcomes.push_back(std::move(outcome));
    if (interrupted) break;
  }

  // bench reports the best repetition (least scheduler noise); serve has
  // exactly one.
  const ServeOutcome* best = &outcomes.front();
  for (const ServeOutcome& outcome : outcomes) {
    if (outcome.seconds < best->seconds) best = &outcome;
  }

  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("dataset").String(dataset.spec.name);
    writer.Key("split").String(*split);
    EmitServeJson(*best, static_cast<int>(*shards), static_cast<int>(*workers),
                  static_cast<int>(*batch), &writer);
    if (*workers > 0) {
      writer.Key("overload_policy").String(OverloadPolicyName(overload_policy));
      writer.Key("queue_depth").Int(*queue_depth);
    }
    if (bench) {
      writer.Key("repetitions").Int(runs);
      writer.Key("items_per_sec_all").BeginArray();
      for (const ServeOutcome& outcome : outcomes) {
        writer.Double(
            outcome.seconds > 0 ? outcome.items / outcome.seconds : 0.0, 1);
      }
      writer.EndArray();
    }
    writer.EndObject();
    out << writer.str();
  } else {
    out << dataset.spec.name << " / " << *split << " split, " << *shards
        << " shard(s), ";
    if (*workers > 0) {
      out << *workers << " worker(s), queue depth " << *queue_depth << ", "
          << OverloadPolicyName(overload_policy) << " policy, ";
    }
    out << "batch " << *batch << ":\n" << ServeTable(*best).ToText();
    if (best->interrupted) {
      out << "interrupted: drained shard queues, final per-shard stats:\n"
          << PerShardTable(best->per_shard).ToText();
    }
    if (bench && runs > 1) {
      out << "best of " << runs << " repetitions\n";
    }
  }
  return best->interrupted ? kExitInterrupted : kExitOk;
}

// ---- kvec loadgen --------------------------------------------------------

int RunLoadgenCommand(const std::vector<std::string>& args, std::ostream& out,
                      std::ostream& err) {
  ArgParser parser("kvec loadgen");
  DatasetFlags dataset_flags = AddDatasetFlags(&parser, "ustc");
  std::string* split = parser.AddString(
      "split", "test", "which split to replay: train|validation|test");
  std::string* connect = parser.AddString(
      "connect", "", "server HOST:PORT to drive (kvec serve --listen)");
  int64_t* connections = parser.AddInt(
      "connections", 1, "concurrent client connections (one thread each)");
  int64_t* batch =
      parser.AddInt("batch", 64, "items per ingest frame");
  double* rate = parser.AddDouble(
      "rate", 0.0,
      "microbatches/sec per connection (0 = as fast as acks return)");
  int64_t* timeout_ms = parser.AddInt(
      "timeout-ms", 2000, "per-request deadline (connect and round trip)");
  int64_t* retries = parser.AddInt(
      "retries", 5, "retry budget per batch beyond the first attempt");
  int64_t* backoff_ms = parser.AddInt(
      "backoff-ms", 10, "initial retry backoff (doubles per attempt, "
                        "jittered)");
  int64_t* backoff_cap_ms = parser.AddInt(
      "backoff-cap-ms", 1000, "exponential backoff growth stops here");
  bool* json = parser.AddBool("json", false, "emit JSON instead of tables");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }
  if (connect->empty()) {
    err << "kvec: --connect HOST:PORT is required\n" << parser.Usage();
    return kExitUsage;
  }
  std::string host;
  uint16_t port = 0;
  std::string error;
  if (!ParseHostPort(*connect, &host, &port, &error) || port == 0) {
    err << "kvec: --connect: "
        << (port == 0 && error.empty() ? "port must be nonzero" : error)
        << "\n";
    return kExitUsage;
  }
  if (*connections <= 0 || *batch <= 0 || *timeout_ms <= 0 ||
      *retries < 0 || *backoff_ms < 0 || *backoff_cap_ms < *backoff_ms ||
      *rate < 0) {
    err << "kvec: loadgen flags out of range (connections/batch/timeout-ms "
           "> 0, retries/backoff-ms >= 0, backoff-cap-ms >= backoff-ms, "
           "rate >= 0)\n";
    return kExitUsage;
  }

  Dataset dataset;
  if (!ResolveDataset(dataset_flags, &dataset, &error)) {
    return RuntimeError(error, err);
  }
  const std::vector<TangledSequence>* episodes = SplitOf(dataset, *split);
  if (episodes == nullptr) {
    err << "kvec: --split must be train|validation|test, got '" << *split
        << "'\n";
    return kExitUsage;
  }
  std::map<int, int> truth;  // unused: verdicts surface on the server side
  const std::vector<Item> stream = InterleaveEpisodes(
      *episodes, dataset.spec.max_keys_per_episode, &truth);

  net::LoadgenConfig config;
  config.client.host = host;
  config.client.port = port;
  config.client.connect_timeout_ms = static_cast<int>(*timeout_ms);
  config.client.request_timeout_ms = static_cast<int>(*timeout_ms);
  config.connections = static_cast<int>(*connections);
  config.batch_size = static_cast<int>(*batch);
  config.rate = *rate;
  config.retries = static_cast<int>(*retries);
  config.backoff_ms = static_cast<int>(*backoff_ms);
  config.backoff_cap_ms = static_cast<int>(*backoff_cap_ms);
  config.seed = static_cast<uint64_t>(*dataset_flags.seed);
  config.num_value_fields = dataset.spec.num_value_fields();
  config.num_classes = dataset.spec.num_classes;

  net::LoadgenReport report;
  if (!net::RunLoadgen(config, stream, &report, &error)) {
    return RuntimeError(error, err);
  }

  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("connect").String(*connect);
    writer.Key("connections").Int(*connections);
    writer.Key("batch").Int(*batch);
    writer.Key("batches_sent").Int(report.batches_sent);
    writer.Key("batches_failed").Int(report.batches_failed);
    writer.Key("items_acked").Int(report.items_acked);
    writer.Key("items_shed").Int(report.items_shed);
    writer.Key("retries").Int(report.retries);
    writer.Key("overloaded_replies").Int(report.overloaded_replies);
    writer.Key("reconnects").Int(report.reconnects);
    writer.Key("elapsed_ms").Int(report.elapsed_ms);
    writer.Key("batches_per_sec").Double(report.batches_per_sec, 1);
    writer.Key("items_per_sec").Double(report.items_per_sec, 1);
    writer.Key("latency_us").BeginObject();
    writer.Key("count").Int(report.latency.count);
    writer.Key("min").Int(report.latency.min_us);
    writer.Key("mean").Double(report.latency.mean_us, 1);
    writer.Key("p50").Int(report.latency.p50_us);
    writer.Key("p90").Int(report.latency.p90_us);
    writer.Key("p99").Int(report.latency.p99_us);
    writer.Key("p999").Int(report.latency.p999_us);
    writer.Key("max").Int(report.latency.max_us);
    writer.EndObject();
    writer.EndObject();
    out << writer.str();
  } else {
    out << *connect << ", " << *connections << " connection(s), batch "
        << *batch << ":\n";
    Table table({"stat", "value"});
    table.AddRow({"batches sent", std::to_string(report.batches_sent)});
    table.AddRow({"batches failed", std::to_string(report.batches_failed)});
    table.AddRow({"items acked", std::to_string(report.items_acked)});
    table.AddRow({"items shed", std::to_string(report.items_shed)});
    table.AddRow({"retries", std::to_string(report.retries)});
    table.AddRow(
        {"overloaded replies", std::to_string(report.overloaded_replies)});
    table.AddRow({"reconnects", std::to_string(report.reconnects)});
    table.AddRow({"elapsed ms", std::to_string(report.elapsed_ms)});
    table.AddRow(
        {"batches/sec", Table::FormatDouble(report.batches_per_sec, 1)});
    table.AddRow({"items/sec", Table::FormatDouble(report.items_per_sec, 1)});
    table.AddRow({"latency p50 us", std::to_string(report.latency.p50_us)});
    table.AddRow({"latency p99 us", std::to_string(report.latency.p99_us)});
    table.AddRow(
        {"latency p999 us", std::to_string(report.latency.p999_us)});
    table.AddRow({"latency max us", std::to_string(report.latency.max_us)});
    out << table.ToText();
  }
  // "It ran" is not success if nothing was delivered: a server that
  // rejected or dropped every batch should fail scripts loudly.
  if (report.batches_sent == 0 && report.batches_failed > 0) {
    return kExitRuntime;
  }
  return kExitOk;
}

// ---- kvec checkpoint -----------------------------------------------------

const char* SectionName(int32_t id) {
  switch (id) {
    case kCheckpointSectionStreamServer:
      return "stream_server";
    case kCheckpointSectionShardManifest:
      return "shard_manifest";
    case kCheckpointSectionShard:
      return "shard";
    case kCheckpointSectionDeltaManifest:
      return "delta_manifest";
    case kCheckpointSectionShardDelta:
      return "shard_delta";
    case kCheckpointSectionModelConfig:
      return "model_config";
    case kCheckpointSectionModelParams:
      return "model_params";
    default:
      return "unknown";
  }
}

int RunCheckpoint(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  ArgParser parser("kvec checkpoint");
  std::string* file = parser.AddString(
      "inspect", "", "checkpoint container to describe (model bundle from "
                     "kvec train, or serving state from kvec serve)");
  bool* json = parser.AddBool("json", false, "emit JSON instead of a table");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }
  if (file->empty()) {
    err << "kvec: checkpoint requires --inspect <path>\n" << parser.Usage();
    return kExitUsage;
  }

  Checkpoint checkpoint;
  if (!CheckpointLoad(*file, &checkpoint)) {
    return RuntimeError("'" + *file +
                            "' is not a readable checkpoint container "
                            "(bad magic, version, or framing)",
                        err);
  }

  // If a model-config section parses, describe the model too.
  KvecConfig config;
  bool have_config = false;
  if (const CheckpointSection* section =
          checkpoint.Find(kCheckpointSectionModelConfig)) {
    BinaryReader reader(section->payload);
    have_config = ReadKvecConfig(&reader, &config);
  }

  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("file").String(*file);
    writer.Key("format_version").Int(checkpoint.version);
    writer.Key("sections").BeginArray();
    for (const CheckpointSection& section : checkpoint.sections) {
      writer.BeginObject();
      writer.Key("id").Int(section.id);
      writer.Key("name").String(SectionName(section.id));
      writer.Key("bytes").Int(static_cast<int64_t>(section.payload.size()));
      writer.EndObject();
    }
    writer.EndArray();
    if (have_config) {
      writer.Key("model").BeginObject();
      writer.Key("dataset").String(config.spec.name);
      writer.Key("num_classes").Int(config.spec.num_classes);
      writer.Key("embed_dim").Int(config.embed_dim);
      writer.Key("state_dim").Int(config.state_dim);
      writer.Key("num_blocks").Int(config.num_blocks);
      writer.Key("ffn_hidden_dim").Int(config.ffn_hidden_dim);
      writer.EndObject();
    }
    writer.EndObject();
    out << writer.str();
  } else {
    out << *file << ": checkpoint container, format version "
        << checkpoint.version << "\n";
    Table table({"section", "id", "bytes"});
    for (const CheckpointSection& section : checkpoint.sections) {
      table.AddRow({SectionName(section.id), std::to_string(section.id),
                    std::to_string(section.payload.size())});
    }
    out << table.ToText();
    if (have_config) {
      out << "model: " << config.spec.name << ", "
          << config.spec.num_classes << " classes, embed_dim "
          << config.embed_dim << ", state_dim " << config.state_dim << ", "
          << config.num_blocks << " block(s)\n";
    }
  }
  return kExitOk;
}

std::string GlobalUsage() {
  std::ostringstream out;
  out << "kvec — early classification of tangled key-value streams\n"
      << "usage: kvec <subcommand> [flags]\n\nsubcommands:\n";
  size_t width = 0;
  for (const SubcommandInfo& info : Subcommands()) {
    width = std::max(width, std::string(info.name).size());
  }
  for (const SubcommandInfo& info : Subcommands()) {
    out << "  " << info.name
        << std::string(width - std::string(info.name).size() + 2, ' ')
        << info.summary << "\n";
  }
  out << "\nrun 'kvec <subcommand> --help' for that subcommand's flags;\n"
      << "see docs/REPRODUCING.md for the end-to-end walkthrough.\n";
  return out.str();
}

}  // namespace

void RequestServeInterrupt() { g_serve_interrupted.store(true); }

const std::vector<SubcommandInfo>& Subcommands() {
  static const std::vector<SubcommandInfo> subcommands = {
      {"generate", "synthesize a dataset preset into a CSV directory"},
      {"train", "train a KVEC model and save a self-describing bundle"},
      {"eval", "evaluate a model bundle on a split (tables or JSON)"},
      {"sweep", "earliness/accuracy sweeps across methods (paper figures)"},
      {"serve", "replay a stream through the bounded/sharded serving stack"},
      {"loadgen", "drive a kvec serve --listen endpoint over TCP with "
                  "retry/backoff and latency percentiles"},
      {"bench", "end-to-end serving throughput measurement"},
      {"soak", "bounded-memory soak: RSS-flatness assertion and the "
               "memory-vs-open-keys curve"},
      {"checkpoint", "inspect model bundles and serving checkpoints"},
  };
  return subcommands;
}

int RunKvecCli(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "-h" ||
      args[0] == "help") {
    err << GlobalUsage();
    return args.empty() ? kExitUsage : kExitOk;
  }
  const std::string& subcommand = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (subcommand == "generate") return RunGenerate(rest, out, err);
  if (subcommand == "train") return RunTrain(rest, out, err);
  if (subcommand == "eval") return RunEval(rest, out, err);
  if (subcommand == "sweep") return RunSweep(rest, out, err);
  if (subcommand == "serve") {
    return RunServeOrBench(rest, out, err, /*bench=*/false);
  }
  if (subcommand == "loadgen") return RunLoadgenCommand(rest, out, err);
  if (subcommand == "bench") {
    return RunServeOrBench(rest, out, err, /*bench=*/true);
  }
  if (subcommand == "soak") return RunSoakCommand(rest, out, err);
  if (subcommand == "checkpoint") return RunCheckpoint(rest, out, err);
  err << "kvec: unknown subcommand '" << subcommand << "'\n\n"
      << GlobalUsage();
  return kExitUsage;
}

int KvecMain(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? argc - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return RunKvecCli(args, std::cout, std::cerr);
}

}  // namespace cli
}  // namespace kvec
