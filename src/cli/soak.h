// `kvec soak` — the time-compressed bounded-memory soak harness
// (docs/SERVING.md "Memory management", docs/REPRODUCING.md).
//
// Drives a ShardedStreamServer through ingest / idle-eviction /
// checkpoint-restore / compaction cycles at 100k–1M open keys while
// sampling process RSS and the pool gauges, and FAILS (exit 1) when the
// post-warm-up RSS samples drift outside the configured flatness band —
// "bounded memory" as a tested claim rather than a design note. The
// --curve flag additionally emits the memory-vs-open-keys curve in the
// bench-report JSON shape (BENCH_PR9.json).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace kvec {
namespace cli {

// Runs `kvec soak` on `args` (argv minus program and subcommand names).
// Returns 0 when every stage's steady-state RSS stayed inside the band,
// 1 on a band violation or runtime failure, 2 on a usage error.
int RunSoakCommand(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace cli
}  // namespace kvec
