#include "cli/soak.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli/args.h"
#include "cli/json_writer.h"
#include "core/config.h"
#include "core/model.h"
#include "core/sharded_stream_server.h"
#include "data/types.h"
#include "tensor/buffer_pool.h"
#include "util/rng.h"
#include "util/table.h"

// Sanitizer instrumentation inflates and de-flattens RSS (shadow memory,
// quarantines, allocator redzones), so the default flatness band widens —
// the soak still runs end to end under ASan (the CI sanitize job does),
// it just stops pretending the 10% production band is meaningful there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KVEC_SOAK_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KVEC_SOAK_SANITIZED 1
#endif
#endif

namespace kvec {
namespace cli {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

#if defined(KVEC_SOAK_SANITIZED)
constexpr double kDefaultRssBand = 0.60;
#else
constexpr double kDefaultRssBand = 0.10;
#endif

// Each soak cycle makes this many full passes over the stage's key space:
// enough that every shard crosses a window-rotation boundary roughly once
// per cycle (the window is sized to ~2.2 passes below), so a cycle
// exercises rotation, idle/capacity eviction, and steady-state churn.
constexpr int kPassesPerCycle = 2;

int RuntimeError(const std::string& message, std::ostream& err) {
  err << "kvec: " << message << "\n";
  return kExitRuntime;
}

int UsageError(const ArgParser& parser, std::ostream& err) {
  err << "kvec: " << parser.error() << "\n" << parser.Usage();
  return kExitUsage;
}

// Process resident set in bytes from /proc/self/status (VmRSS line, kB).
// Returns -1 when unavailable (non-Linux); the harness then reports the
// pool gauges but skips the RSS flatness assertion.
int64_t ReadRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      int64_t kb = 0;
      if (fields >> kb) return kb * 1024;
      return -1;
    }
  }
  return -1;
}

// A small fixed spec: the soak measures the serving stack's memory
// behavior, not model quality, so the model is untrained and tiny — per-key
// cost is dominated by the same state the production path carries (fusion
// state, open-key entries, correlation sessions), just with small dims.
DatasetSpec SoakSpec() {
  DatasetSpec spec;
  spec.name = "soak-synthetic";
  spec.value_fields = {{"field_a", 32}, {"field_b", 32}};
  spec.session_field = 0;
  spec.num_classes = 4;
  // Keys beyond this vocabulary share the last membership embedding row
  // (InputEmbedding clamps), which is exactly what lets the soak open
  // hundreds of thousands of distinct keys against a small table.
  spec.max_keys_per_episode = 64;
  spec.max_sequence_length = 64;
  spec.max_episode_length = 4096;
  return spec;
}

// Drives the ECTL halt probability to ~0 so keys stay open until the
// server's bounds (idle timeout, capacity, rotation) close them — the soak
// must hold the open-key population at the target, not at wherever a
// random-init policy happens to halt. The only [1,1] parameters in the
// model are the policy head's bias and the baseline head's bias; pinning
// both to -25 makes sigmoid(w·h - 25) vanish for any bounded hidden state
// while leaving the classifier untouched.
void NeutralizeHalting(KvecModel* model) {
  std::vector<Tensor> params;
  model->CollectParameters(&params);
  for (Tensor& param : params) {
    if (param.rows() == 1 && param.cols() == 1) param.Set(0, 0, -25.0f);
  }
}

struct SoakOptions {
  int64_t keys = 100000;
  int shards = 4;
  int workers = 0;
  int batch = 512;
  int warmup_cycles = 2;
  int steady_cycles = 4;
  double churn = 0.25;
  double rss_band = kDefaultRssBand;
  double minutes = 0.0;
  bool checkpoint = true;
  // Incremental mode replaces the per-cycle full encode/restore with a
  // CheckpointIncremental / RestoreFromCheckpointChain round-trip, so the
  // soak also proves the delta chain holds RSS flat under churn.
  bool incremental = false;
  bool compact = true;
  uint64_t seed = 42;
  int compaction_check_interval = 4096;
  double compaction_threshold = 2.0;
  int64_t compaction_min_bytes = 4 << 20;
};

struct StageResult {
  int64_t target_keys = 0;
  int open_keys_peak = 0;
  int64_t items = 0;
  double seconds = 0.0;
  int64_t rss_steady = -1;  // median of post-warm-up samples; -1 unknown
  // Upward-trend measure over the post-warm-up samples: peak of the second
  // half relative to the median of the first half. Negative when RSS
  // settles downward (allocator trim, buffer-pool drain) — benign for a
  // bounded-memory claim, so it must not trip the band the way a
  // symmetric (max-min)/min spread would.
  double rss_drift = 0.0;
  bool rss_flat = true;
  int64_t bytes_resident = 0;
  int64_t pool_blocks = 0;
  int64_t scratch_high_water = 0;
  int64_t compactions = 0;
  int64_t sequences_classified = 0;
  int64_t idle_timeouts = 0;
  int64_t capacity_evictions = 0;
  int64_t rotation_classifications = 0;
  std::vector<int64_t> rss_samples;  // per-steady-cycle peak RSS, in order
};

// One soak stage: a fresh server scoped to `target_keys`, warm-up cycles
// to reach the plateau, then steady cycles whose per-cycle peak-RSS
// samples must show no upward trend beyond the band. Each cycle: kPassesPerCycle round-robin
// passes over the (churning) key window, optional forced compaction,
// optional checkpoint encode + restore at peak population.
bool RunStage(const KvecModel& model, const SoakOptions& options,
              int64_t target_keys, bool extend_to_minutes,
              StageResult* result, std::string* error) {
  const int shards = options.shards;
  const int64_t per_shard = (target_keys + shards - 1) / shards;

  ShardedStreamServerConfig config;
  config.num_shards = shards;
  config.worker_threads = options.workers;
  // Per-shard bounds sized from the stage target so all three close paths
  // fire every steady cycle: capacity 2% above an even hash split, idle
  // eviction at 1.3 passes (active keys are touched every ~1.0 pass;
  // churn-retired ones stop and get swept mid-next-pass), and engine
  // rotation once per cycle (the window holds exactly one cycle's items).
  config.shard.max_open_keys = static_cast<int>(
      std::max<int64_t>(16, per_shard + std::max<int64_t>(8, per_shard / 50)));
  config.shard.idle_timeout = static_cast<int>(
      std::max<int64_t>(64, per_shard + (3 * per_shard) / 10));
  config.shard.max_window_items =
      static_cast<int>(std::max<int64_t>(256, kPassesPerCycle * per_shard));
  config.shard.compaction_check_interval = options.compaction_check_interval;
  config.shard.compaction_fragmentation_threshold =
      options.compaction_threshold;
  config.shard.compaction_min_bytes = options.compaction_min_bytes;

  ShardedStreamServer server(model, config);
  Rng rng(options.seed ^ static_cast<uint64_t>(target_keys));
  const DatasetSpec& spec = model.config().spec;

  // Incremental mode round-trips through an on-disk delta chain; the chain
  // lives in the temp dir and is unlinked when the stage finishes. A short
  // rebase cadence keeps both the delta and the rebase branch hot.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string chain_base =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/kvec_soak_" +
      std::to_string(static_cast<long>(::getpid())) + "_" +
      std::to_string(target_keys) + ".ckpt";
  constexpr int64_t kSoakRebaseEvery = 3;
  ShardedStreamServer::IncrementalCheckpointState chain_state;
  auto unlink_chain = [&chain_base]() {
    for (int64_t seq = 1;; ++seq) {
      if (std::remove(
              ShardedStreamServer::DeltaPath(chain_base, seq).c_str()) != 0) {
        break;
      }
    }
    std::remove(chain_base.c_str());
  };

  const int64_t churn_keys = std::max<int64_t>(
      0, static_cast<int64_t>(options.churn * static_cast<double>(target_keys)));
  int64_t key_base = 0;
  int64_t position = 0;
  int64_t compactions_seen = 0;
  int64_t compaction_counter_floor = 0;
  std::vector<int64_t> steady_rss;
  result->target_keys = target_keys;

  const auto start = std::chrono::steady_clock::now();
  const double deadline_seconds = options.minutes * 60.0;
  int cycle = 0;
  while (true) {
    const bool warmup = cycle < options.warmup_cycles;
    const bool within_planned =
        cycle < options.warmup_cycles + options.steady_cycles;
    if (!within_planned) {
      if (!extend_to_minutes || deadline_seconds <= 0.0) break;
      const double elapsed =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed >= deadline_seconds) break;
    }

    // Per-cycle PEAK RSS, sampled at every batch boundary: the peak is
    // phase-independent of where the engine sits in its rotation window
    // (every cycle contains a moment of maximal window fill), so it is the
    // sample a flatness band can be asserted on — an end-of-cycle point
    // sample would oscillate with rotation phase, not with leaks.
    int64_t cycle_rss_peak = -1;
    for (int pass = 0; pass < kPassesPerCycle; ++pass) {
      std::vector<Item> batch;
      batch.reserve(static_cast<size_t>(options.batch));
      for (int64_t offset = 0; offset < target_keys; ++offset) {
        Item item;
        item.key = static_cast<int>(key_base + offset);
        item.value.reserve(spec.value_fields.size());
        for (const ValueField& field : spec.value_fields) {
          item.value.push_back(rng.NextInt(field.vocab_size));
        }
        item.time = static_cast<double>(position++) * 1e-3;
        batch.push_back(std::move(item));
        if (static_cast<int>(batch.size()) == options.batch ||
            offset + 1 == target_keys) {
          server.ObserveBatch(batch);
          batch.clear();
          result->open_keys_peak =
              std::max(result->open_keys_peak, server.open_keys());
          cycle_rss_peak = std::max(cycle_rss_peak, ReadRssBytes());
        }
      }
      result->items += target_keys;
      // Steady-state churn, applied per pass so retirement happens INSIDE
      // the rotation window: the oldest churn share of the key window goes
      // quiet (idle sweep catches it at 1.3 passes) while the fresh share
      // pushes the shard over capacity (LRU eviction catches the rest) —
      // both close paths keep recycling pool nodes every cycle.
      if (!warmup) key_base += churn_keys / kPassesPerCycle;
    }

    if (options.compact) server.CompactAll();

    // Gauges and compaction deltas are read BEFORE the checkpoint
    // round-trip: restore stages fresh shards, which restarts the
    // process-lifetime counters (they are deliberately not serialized), so
    // the harness accumulates deltas across restores.
    {
      const StreamServerStats stats = server.stats();
      compactions_seen += stats.compactions - compaction_counter_floor;
      compaction_counter_floor = stats.compactions;
      result->bytes_resident = stats.bytes_resident;
      result->pool_blocks = stats.pool_blocks;
      result->scratch_high_water =
          std::max(result->scratch_high_water, stats.scratch_high_water);
    }

    if (options.checkpoint) {
      if (options.incremental) {
        if (!server.CheckpointIncremental(chain_base, kSoakRebaseEvery,
                                          &chain_state) ||
            !server.RestoreFromCheckpointChain(chain_base, &chain_state)) {
          *error = "soak incremental checkpoint round-trip failed at cycle " +
                   std::to_string(cycle);
          unlink_chain();
          return false;
        }
      } else {
        const std::string bytes = server.EncodeCheckpoint();
        if (!server.RestoreCheckpoint(bytes)) {
          *error = "soak checkpoint round-trip failed at cycle " +
                   std::to_string(cycle);
          return false;
        }
      }
      compaction_counter_floor = server.stats().compactions;
      cycle_rss_peak = std::max(cycle_rss_peak, ReadRssBytes());
    }

    if (!warmup && cycle_rss_peak >= 0) steady_rss.push_back(cycle_rss_peak);
    if (std::getenv("KVEC_SOAK_DEBUG_POOL") != nullptr) {
      const BufferPool::Stats bp = BufferPool::Global().stats();
      std::fprintf(
          stderr,
          "[cycle %d] cached=%.1fMiB bufs=%zu hits=%llu miss=%llu "
          "oversized=%llu evict=%llu drop=%llu\n",
          cycle, static_cast<double>(bp.cached_floats) * 4.0 / (1024.0 * 1024.0),
          bp.cached_buffers, static_cast<unsigned long long>(bp.hits),
          static_cast<unsigned long long>(bp.misses),
          static_cast<unsigned long long>(bp.oversized_rejects),
          static_cast<unsigned long long>(bp.evicted),
          static_cast<unsigned long long>(bp.dropped));
    }
    ++cycle;
  }

  const auto stop = std::chrono::steady_clock::now();
  result->seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  if (options.incremental) unlink_chain();

  // The serving counters ARE serialized, so they survive the per-cycle
  // restores and read cumulatively here; the memory gauges were captured
  // pre-restore inside the loop.
  const StreamServerStats stats = server.stats();
  result->compactions = compactions_seen;
  result->sequences_classified = stats.sequences_classified;
  result->idle_timeouts = stats.idle_timeouts;
  result->capacity_evictions = stats.capacity_evictions;
  result->rotation_classifications = stats.rotation_classifications;

  result->rss_samples = steady_rss;
  if (!steady_rss.empty()) {
    std::vector<int64_t> sorted = steady_rss;
    std::sort(sorted.begin(), sorted.end());
    result->rss_steady = sorted[sorted.size() / 2];
    // A leak trends UP: the late samples sit above the early ones. Compare
    // the second half's peak against the first half's median so monotone
    // growth fails the band while benign downward settling (glibc trim,
    // buffer-pool drain after the warm-up overshoot) does not.
    if (steady_rss.size() >= 2) {
      const size_t half = steady_rss.size() / 2;
      std::vector<int64_t> early(steady_rss.begin(),
                                 steady_rss.begin() + half);
      std::sort(early.begin(), early.end());
      const int64_t baseline = std::max<int64_t>(early[early.size() / 2], 1);
      const int64_t late_peak =
          *std::max_element(steady_rss.begin() + half, steady_rss.end());
      result->rss_drift = static_cast<double>(late_peak - baseline) /
                          static_cast<double>(baseline);
    }
    result->rss_flat = result->rss_drift <= options.rss_band;
  }
  return true;
}

void EmitStageJson(const StageResult& stage, JsonWriter* writer) {
  writer->BeginObject();
  writer->Key("target_keys").Int(stage.target_keys);
  writer->Key("open_keys_peak").Int(stage.open_keys_peak);
  writer->Key("items").Int(stage.items);
  writer->Key("seconds").Double(stage.seconds);
  writer->Key("items_per_sec")
      .Double(stage.seconds > 0 ? stage.items / stage.seconds : 0.0, 1);
  writer->Key("rss_steady_bytes").Int(stage.rss_steady);
  writer->Key("rss_drift").Double(stage.rss_drift, 4);
  writer->Key("rss_flat").Bool(stage.rss_flat);
  writer->Key("rss_samples").BeginArray();
  for (int64_t sample : stage.rss_samples) writer->Int(sample);
  writer->EndArray();
  writer->Key("memory").BeginObject();
  writer->Key("bytes_resident").Int(stage.bytes_resident);
  writer->Key("pool_blocks").Int(stage.pool_blocks);
  writer->Key("scratch_high_water").Int(stage.scratch_high_water);
  writer->Key("compactions").Int(stage.compactions);
  writer->EndObject();
  writer->Key("events").BeginObject();
  writer->Key("sequences_classified").Int(stage.sequences_classified);
  writer->Key("idle_timeouts").Int(stage.idle_timeouts);
  writer->Key("capacity_evictions").Int(stage.capacity_evictions);
  writer->Key("rotation_classifications")
      .Int(stage.rotation_classifications);
  writer->EndObject();
  writer->EndObject();
}

// The memory-vs-open-keys curve in the shape bench/run_benchmarks.sh
// merges ({"context": ..., "benchmarks": {name: counters}}), so
// BENCH_PR9.json sits beside the google-benchmark-derived reports.
std::string CurveJson(const SoakOptions& options,
                      const std::vector<StageResult>& stages) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("context").BeginObject();
  writer.Key("keys").Int(options.keys);
  writer.Key("shards").Int(options.shards);
  writer.Key("workers").Int(options.workers);
  writer.Key("batch").Int(options.batch);
  writer.Key("rss_band").Double(options.rss_band, 4);
  writer.Key("passes_per_cycle").Int(kPassesPerCycle);
  writer.Key("churn").Double(options.churn, 4);
  writer.EndObject();
  writer.Key("benchmarks").BeginObject();
  for (const StageResult& stage : stages) {
    writer.Key("SOAK_MemoryVsOpenKeys/" + std::to_string(stage.target_keys))
        .BeginObject();
    writer.Key("real_time_ns").Double(stage.seconds * 1e9, 1);
    writer.Key("items_per_second")
        .Double(stage.seconds > 0 ? stage.items / stage.seconds : 0.0, 1);
    writer.Key("open_keys_peak").Int(stage.open_keys_peak);
    writer.Key("rss_bytes").Int(stage.rss_steady);
    writer.Key("rss_drift").Double(stage.rss_drift, 4);
    writer.Key("pool_resident_bytes").Int(stage.bytes_resident);
    writer.Key("pool_blocks").Int(stage.pool_blocks);
    writer.Key("scratch_high_water").Int(stage.scratch_high_water);
    writer.Key("compactions").Int(stage.compactions);
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return writer.str();
}

}  // namespace

int RunSoakCommand(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  ArgParser parser("kvec soak");
  int64_t* keys = parser.AddInt(
      "keys", 100000, "peak open-key population of the final stage");
  int64_t* shards = parser.AddInt("shards", 4, "serving shards");
  int64_t* workers = parser.AddInt(
      "workers", 0,
      "shard-owned worker threads (0 = synchronous ingest; N>0 must equal "
      "--shards)");
  int64_t* batch = parser.AddInt("batch", 512, "ObserveBatch microbatch size");
  int64_t* warmup = parser.AddInt(
      "warmup-cycles", 2, "cycles per stage excluded from the flatness band");
  int64_t* cycles = parser.AddInt(
      "cycles", 4, "measured steady-state cycles per stage");
  double* churn = parser.AddDouble(
      "churn", 0.25,
      "fraction of the key window replaced per steady cycle (drives "
      "eviction + pool recycling)");
  double* rss_band = parser.AddDouble(
      "rss-band", kDefaultRssBand,
      "max allowed post-warm-up RSS drift, (max-min)/min; exceeded = exit 1 "
      "(default widens under sanitizers)");
  double minutes_default = 0.0;
  if (const char* env = std::getenv("KVEC_SOAK_MINUTES")) {
    minutes_default = std::atof(env);
  }
  double* minutes = parser.AddDouble(
      "minutes", minutes_default,
      "stretch the final stage's steady phase to at least this many "
      "wall-clock minutes (default from KVEC_SOAK_MINUTES; 0 = planned "
      "cycles only)");
  std::string* scales_text = parser.AddString(
      "scales", "0.25,0.5,1",
      "comma-separated fractions of --keys; one soak stage (and one curve "
      "point) per scale, ascending");
  bool* checkpoint = parser.AddBool(
      "checkpoint", true,
      "encode + restore a full serving checkpoint at peak population every "
      "cycle");
  std::string* checkpoint_mode = parser.AddString(
      "checkpoint-mode", "full",
      "per-cycle checkpoint round-trip: full (in-memory encode/restore) or "
      "incremental (on-disk delta chain via CheckpointIncremental + "
      "RestoreFromCheckpointChain)");
  bool* compact = parser.AddBool(
      "compact", true, "force CompactAll every cycle (the fragmentation "
                       "heuristic still runs either way)");
  int64_t* compaction_interval = parser.AddInt(
      "compaction-check-interval", 4096,
      "per-shard items between fragmentation checks (<=0 disables the "
      "heuristic)");
  double* compaction_threshold = parser.AddDouble(
      "compaction-threshold", 2.0,
      "compact when pool resident/live exceeds this ratio");
  int64_t* compaction_min_bytes = parser.AddInt(
      "compaction-min-bytes", 4 << 20,
      "never compact pools smaller than this many resident bytes");
  int64_t* seed = parser.AddInt("seed", 42, "value-stream RNG seed");
  std::string* curve = parser.AddString(
      "curve", "", "write the memory-vs-open-keys curve (bench-report JSON) "
                   "to this file");
  bool* json = parser.AddBool("json", false, "emit JSON instead of a table");
  if (!parser.Parse(args)) return UsageError(parser, err);
  if (parser.help_requested()) {
    err << parser.Usage();
    return kExitOk;
  }

  if (*keys <= 0 || *shards <= 0 || *batch <= 0 || *warmup < 0 ||
      *cycles <= 0 || *churn < 0 || *churn > 1 || *rss_band <= 0 ||
      *minutes < 0) {
    err << "kvec: soak flags out of range (keys/shards/batch/cycles > 0, "
           "warmup-cycles >= 0, 0 <= churn <= 1, rss-band > 0, "
           "minutes >= 0)\n";
    return kExitUsage;
  }
  if (*workers != 0 && *workers != *shards) {
    err << "kvec: --workers must be 0 or equal --shards (one owned worker "
           "per shard), got --workers "
        << *workers << " --shards " << *shards << "\n";
    return kExitUsage;
  }
  std::vector<double> scales;
  for (const std::string& text : SplitCommaList(*scales_text)) {
    const double scale = std::atof(text.c_str());
    if (scale <= 0 || scale > 1) {
      err << "kvec: --scales entries must be in (0, 1], got '" << text
          << "'\n";
      return kExitUsage;
    }
    scales.push_back(scale);
  }
  if (scales.empty()) scales.push_back(1.0);

  SoakOptions options;
  options.keys = *keys;
  options.shards = static_cast<int>(*shards);
  options.workers = static_cast<int>(*workers);
  options.batch = static_cast<int>(*batch);
  options.warmup_cycles = static_cast<int>(*warmup);
  options.steady_cycles = static_cast<int>(*cycles);
  options.churn = *churn;
  options.rss_band = *rss_band;
  options.minutes = *minutes;
  options.checkpoint = *checkpoint;
  if (*checkpoint_mode == "incremental") {
    options.incremental = true;
  } else if (*checkpoint_mode != "full") {
    err << "kvec: --checkpoint-mode must be full|incremental, got '"
        << *checkpoint_mode << "'\n";
    return kExitUsage;
  }
  options.compact = *compact;
  options.seed = static_cast<uint64_t>(*seed);
  options.compaction_check_interval = static_cast<int>(*compaction_interval);
  options.compaction_threshold = *compaction_threshold;
  options.compaction_min_bytes = *compaction_min_bytes;

  KvecConfig model_config = KvecConfig::ForSpec(SoakSpec());
  model_config.embed_dim = 12;
  model_config.state_dim = 16;
  model_config.num_blocks = 1;
  model_config.ffn_hidden_dim = 24;
  KvecModel model(model_config);
  NeutralizeHalting(&model);

  std::vector<StageResult> stages;
  bool flat = true;
  bool rss_available = true;
  for (size_t i = 0; i < scales.size(); ++i) {
    StageResult stage;
    const int64_t target = std::max<int64_t>(
        options.shards,
        static_cast<int64_t>(std::llround(scales[i] * options.keys)));
    std::string error;
    if (!RunStage(model, options, target,
                  /*extend_to_minutes=*/i + 1 == scales.size(), &stage,
                  &error)) {
      return RuntimeError(error, err);
    }
    flat = flat && stage.rss_flat;
    rss_available = rss_available && stage.rss_steady >= 0;
    stages.push_back(stage);
  }

  if (!curve->empty()) {
    std::ofstream file(*curve);
    file << CurveJson(options, stages);
    if (!file) {
      return RuntimeError("cannot write curve file '" + *curve + "'", err);
    }
  }

  if (*json) {
    JsonWriter writer;
    writer.BeginObject();
    writer.Key("keys").Int(options.keys);
    writer.Key("shards").Int(options.shards);
    writer.Key("workers").Int(options.workers);
    writer.Key("batch").Int(options.batch);
    writer.Key("rss_band").Double(options.rss_band, 4);
    writer.Key("rss_available").Bool(rss_available);
    writer.Key("flat").Bool(flat);
    writer.Key("stages").BeginArray();
    for (const StageResult& stage : stages) EmitStageJson(stage, &writer);
    writer.EndArray();
    writer.EndObject();
    out << writer.str();
  } else {
    out << "soak: " << stages.size() << " stage(s), band "
        << Table::FormatDouble(options.rss_band, 2) << ", "
        << (flat ? "RSS FLAT" : "RSS DRIFTED") << "\n";
    Table table({"target keys", "open peak", "items", "items/sec",
                 "rss MiB", "drift", "flat", "pool MiB", "compactions",
                 "evictions"});
    for (const StageResult& stage : stages) {
      table.AddRow(
          {std::to_string(stage.target_keys),
           std::to_string(stage.open_keys_peak), std::to_string(stage.items),
           Table::FormatDouble(
               stage.seconds > 0 ? stage.items / stage.seconds : 0.0, 1),
           Table::FormatDouble(
               static_cast<double>(stage.rss_steady) / (1024.0 * 1024.0), 1),
           Table::FormatDouble(stage.rss_drift, 4),
           stage.rss_flat ? "yes" : "NO",
           Table::FormatDouble(
               static_cast<double>(stage.bytes_resident) / (1024.0 * 1024.0),
               1),
           std::to_string(stage.compactions),
           std::to_string(stage.idle_timeouts + stage.capacity_evictions)});
    }
    out << table.ToText();
  }

  if (!flat) {
    return RuntimeError(
        "post-warm-up RSS drifted outside the flatness band (see table / "
        "--json; widen --rss-band only with cause)",
        err);
  }
  return kExitOk;
}

}  // namespace cli
}  // namespace kvec
