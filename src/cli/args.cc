#include "cli/args.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace kvec {
namespace cli {

ArgParser::ArgParser(std::string command) : command_(std::move(command)) {}

std::string* ArgParser::AddString(const std::string& name,
                                  std::string default_value,
                                  const std::string& help) {
  strings_.push_back(std::make_unique<std::string>(std::move(default_value)));
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kString;
  flag.help = help;
  flag.default_text = *strings_.back();
  flag.value_index = strings_.size() - 1;
  flags_.push_back(std::move(flag));
  return strings_.back().get();
}

int64_t* ArgParser::AddInt(const std::string& name, int64_t default_value,
                           const std::string& help) {
  ints_.push_back(std::make_unique<int64_t>(default_value));
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kInt;
  flag.help = help;
  flag.default_text = std::to_string(default_value);
  flag.value_index = ints_.size() - 1;
  flags_.push_back(std::move(flag));
  return ints_.back().get();
}

double* ArgParser::AddDouble(const std::string& name, double default_value,
                             const std::string& help) {
  doubles_.push_back(std::make_unique<double>(default_value));
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kDouble;
  flag.help = help;
  std::ostringstream text;
  text << default_value;
  flag.default_text = text.str();
  flag.value_index = doubles_.size() - 1;
  flags_.push_back(std::move(flag));
  return doubles_.back().get();
}

bool* ArgParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  bools_.push_back(std::make_unique<bool>(default_value));
  Flag flag;
  flag.name = name;
  flag.kind = Kind::kBool;
  flag.help = help;
  flag.default_text = default_value ? "true" : "false";
  flag.value_index = bools_.size() - 1;
  flags_.push_back(std::move(flag));
  return bools_.back().get();
}

ArgParser::Flag* ArgParser::FindFlag(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool ArgParser::SetValue(Flag* flag, const std::string& text) {
  switch (flag->kind) {
    case Kind::kString:
      *strings_[flag->value_index] = text;
      return true;
    case Kind::kInt: {
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        error_ = "--" + flag->name + " expects an integer, got '" + text + "'";
        return false;
      }
      *ints_[flag->value_index] = value;
      return true;
    }
    case Kind::kDouble: {
      errno = 0;
      char* end = nullptr;
      double value = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        error_ = "--" + flag->name + " expects a number, got '" + text + "'";
        return false;
      }
      *doubles_[flag->value_index] = value;
      return true;
    }
    case Kind::kBool:
      error_ = "--" + flag->name + " takes no value (use --" + flag->name +
               " or --no-" + flag->name + ")";
      return false;
  }
  return false;
}

bool ArgParser::Parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
      error_ = "unexpected argument '" + arg + "'";
      return false;
    }
    std::string body = arg.substr(2);
    std::string inline_value;
    bool has_inline_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      inline_value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_inline_value = true;
    }

    // `--no-flag` for booleans.
    if (!has_inline_value && body.compare(0, 3, "no-") == 0) {
      Flag* flag = FindFlag(body.substr(3));
      if (flag != nullptr && flag->kind == Kind::kBool) {
        *bools_[flag->value_index] = false;
        flag->provided = true;
        continue;
      }
    }

    Flag* flag = FindFlag(body);
    if (flag == nullptr) {
      error_ = "unknown flag --" + body;
      return false;
    }
    flag->provided = true;
    if (flag->kind == Kind::kBool) {
      if (has_inline_value) {
        if (inline_value == "true") {
          *bools_[flag->value_index] = true;
        } else if (inline_value == "false") {
          *bools_[flag->value_index] = false;
        } else {
          error_ = "--" + flag->name + "= expects true or false, got '" +
                   inline_value + "'";
          return false;
        }
      } else {
        *bools_[flag->value_index] = true;
      }
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= args.size()) {
        error_ = "--" + flag->name + " is missing its value";
        return false;
      }
      inline_value = args[++i];
    }
    if (!SetValue(flag, inline_value)) return false;
  }
  return true;
}

bool ArgParser::Provided(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return flag.provided;
  }
  return false;
}

std::string ArgParser::Usage() const {
  std::ostringstream out;
  out << "usage: " << command_ << " [flags]\n";
  size_t width = 0;
  for (const Flag& flag : flags_) {
    width = std::max(width, flag.name.size());
  }
  for (const Flag& flag : flags_) {
    out << "  --" << flag.name
        << std::string(width - flag.name.size() + 2, ' ') << flag.help
        << " (default: " << flag.default_text << ")\n";
  }
  return out.str();
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  if (text.empty()) return parts;
  size_t start = 0;
  while (true) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace cli
}  // namespace kvec
