#include "metrics/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace kvec {

std::vector<CalibrationBin> ReliabilityBins(
    const std::vector<PredictionRecord>& records, int num_bins) {
  KVEC_CHECK_GT(num_bins, 0);
  std::vector<CalibrationBin> bins(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    bins[b].lower = static_cast<double>(b) / num_bins;
    bins[b].upper = static_cast<double>(b + 1) / num_bins;
  }
  for (const PredictionRecord& record : records) {
    int b = static_cast<int>(record.confidence * num_bins);
    b = std::clamp(b, 0, num_bins - 1);  // confidence == 1.0 -> last bin
    CalibrationBin& bin = bins[b];
    ++bin.count;
    bin.mean_confidence += record.confidence;
    if (record.predicted_label == record.true_label) bin.accuracy += 1.0;
  }
  for (CalibrationBin& bin : bins) {
    if (bin.count == 0) continue;
    bin.mean_confidence /= bin.count;
    bin.accuracy /= bin.count;
  }
  return bins;
}

double ExpectedCalibrationError(const std::vector<PredictionRecord>& records,
                                int num_bins) {
  if (records.empty()) return 0.0;
  double ece = 0.0;
  for (const CalibrationBin& bin : ReliabilityBins(records, num_bins)) {
    if (bin.count == 0) continue;
    ece += (static_cast<double>(bin.count) / records.size()) *
           std::fabs(bin.accuracy - bin.mean_confidence);
  }
  return ece;
}

double MaximumCalibrationError(const std::vector<PredictionRecord>& records,
                               int num_bins) {
  double mce = 0.0;
  for (const CalibrationBin& bin : ReliabilityBins(records, num_bins)) {
    if (bin.count == 0) continue;
    mce = std::max(mce, std::fabs(bin.accuracy - bin.mean_confidence));
  }
  return mce;
}

std::string CalibrationReport(const std::vector<PredictionRecord>& records,
                              int num_bins) {
  std::string out =
      "confidence bin   count  mean_conf  accuracy   gap\n";
  char line[128];
  for (const CalibrationBin& bin : ReliabilityBins(records, num_bins)) {
    std::snprintf(line, sizeof(line),
                  "[%.2f, %.2f)     %-6d %.4f     %.4f     %+.4f\n",
                  bin.lower, bin.upper, bin.count, bin.mean_confidence,
                  bin.accuracy,
                  bin.count == 0 ? 0.0 : bin.accuracy - bin.mean_confidence);
    out += line;
  }
  std::snprintf(line, sizeof(line), "ECE = %.4f   MCE = %.4f   (N = %zu)\n",
                ExpectedCalibrationError(records, num_bins),
                MaximumCalibrationError(records, num_bins), records.size());
  out += line;
  return out;
}

}  // namespace kvec
