// Confidence-calibration diagnostics for early classifiers.
//
// An early classifier's halting decision often leans on its confidence
// (SRN-Confidence does so explicitly), so a miscalibrated classifier halts
// at the wrong time even when its argmax is fine. These helpers implement
// the standard reliability analysis: bucket predictions by confidence,
// compare per-bucket accuracy to mean confidence, and summarise the gap as
// the Expected Calibration Error (ECE, Guo et al. 2017).
#pragma once

#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace kvec {

struct CalibrationBin {
  double lower = 0.0;  // confidence interval [lower, upper)
  double upper = 0.0;
  int count = 0;
  double mean_confidence = 0.0;
  double accuracy = 0.0;
};

// Equal-width confidence bins over [0, 1]; confidence exactly 1.0 falls in
// the last bin. Records with confidence 0 (method exposes none) are kept —
// they land in the first bin, which is usually what you want to see.
std::vector<CalibrationBin> ReliabilityBins(
    const std::vector<PredictionRecord>& records, int num_bins = 10);

// ECE = Σ_b (|B_b| / N) * |accuracy(B_b) - mean_confidence(B_b)|.
// Returns 0 for empty input.
double ExpectedCalibrationError(const std::vector<PredictionRecord>& records,
                                int num_bins = 10);

// Maximum per-bin gap instead of the weighted average (MCE).
double MaximumCalibrationError(const std::vector<PredictionRecord>& records,
                               int num_bins = 10);

// Aligned text table of the reliability bins plus the ECE line.
std::string CalibrationReport(const std::vector<PredictionRecord>& records,
                              int num_bins = 10);

}  // namespace kvec

