#include "metrics/metrics.h"

#include "util/check.h"
#include "util/table.h"

namespace kvec {

double HarmonicMean(double accuracy, double earliness) {
  double timeliness = 1.0 - earliness;
  double denominator = timeliness + accuracy;
  if (denominator <= 0.0) return 0.0;
  return 2.0 * timeliness * accuracy / denominator;
}

EvaluationSummary Evaluate(const std::vector<PredictionRecord>& records,
                           int num_classes) {
  KVEC_CHECK_GT(num_classes, 0);
  EvaluationSummary summary;
  summary.num_sequences = static_cast<int>(records.size());
  if (records.empty()) return summary;

  std::vector<int64_t> true_positive(num_classes, 0);
  std::vector<int64_t> false_positive(num_classes, 0);
  std::vector<int64_t> false_negative(num_classes, 0);
  double earliness_sum = 0.0;
  int64_t correct = 0;
  for (const PredictionRecord& record : records) {
    KVEC_CHECK_GE(record.true_label, 0);
    KVEC_CHECK_LT(record.true_label, num_classes);
    KVEC_CHECK_GE(record.predicted_label, 0);
    KVEC_CHECK_LT(record.predicted_label, num_classes);
    KVEC_CHECK_GT(record.sequence_length, 0);
    KVEC_CHECK_GE(record.observed_items, 1);
    KVEC_CHECK_LE(record.observed_items, record.sequence_length);
    earliness_sum += static_cast<double>(record.observed_items) /
                     static_cast<double>(record.sequence_length);
    if (record.true_label == record.predicted_label) {
      ++correct;
      ++true_positive[record.true_label];
    } else {
      ++false_positive[record.predicted_label];
      ++false_negative[record.true_label];
    }
  }
  summary.earliness = earliness_sum / records.size();
  summary.accuracy = static_cast<double>(correct) / records.size();

  // Macro averages over classes that appear (as truth or prediction);
  // classes absent from the evaluation set are skipped, matching common
  // practice for macro metrics.
  double precision_sum = 0.0, recall_sum = 0.0, f1_sum = 0.0;
  int active_classes = 0;
  for (int c = 0; c < num_classes; ++c) {
    int64_t tp = true_positive[c];
    int64_t fp = false_positive[c];
    int64_t fn = false_negative[c];
    if (tp + fp + fn == 0) continue;
    ++active_classes;
    double precision =
        (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
    double recall = (tp + fn) > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
    double f1 = (precision + recall) > 0.0
                    ? 2.0 * precision * recall / (precision + recall)
                    : 0.0;
    precision_sum += precision;
    recall_sum += recall;
    f1_sum += f1;
  }
  if (active_classes > 0) {
    summary.macro_precision = precision_sum / active_classes;
    summary.macro_recall = recall_sum / active_classes;
    summary.macro_f1 = f1_sum / active_classes;
  }
  summary.harmonic_mean = HarmonicMean(summary.accuracy, summary.earliness);
  return summary;
}

std::vector<std::vector<int64_t>> ConfusionMatrix(
    const std::vector<PredictionRecord>& records, int num_classes) {
  KVEC_CHECK_GT(num_classes, 0);
  std::vector<std::vector<int64_t>> matrix(
      num_classes, std::vector<int64_t>(num_classes, 0));
  for (const PredictionRecord& record : records) {
    KVEC_CHECK_GE(record.true_label, 0);
    KVEC_CHECK_LT(record.true_label, num_classes);
    KVEC_CHECK_GE(record.predicted_label, 0);
    KVEC_CHECK_LT(record.predicted_label, num_classes);
    ++matrix[record.true_label][record.predicted_label];
  }
  return matrix;
}

std::string ClassificationReport(const std::vector<PredictionRecord>& records,
                                 int num_classes) {
  std::vector<std::vector<int64_t>> matrix =
      ConfusionMatrix(records, num_classes);
  Table table({"class", "precision", "recall", "f1", "support"});
  double precision_sum = 0.0, recall_sum = 0.0, f1_sum = 0.0;
  int active = 0;
  int64_t total_support = 0;
  for (int c = 0; c < num_classes; ++c) {
    int64_t tp = matrix[c][c];
    int64_t support = 0, predicted = 0;
    for (int o = 0; o < num_classes; ++o) {
      support += matrix[c][o];
      predicted += matrix[o][c];
    }
    total_support += support;
    if (support == 0 && predicted == 0) continue;
    ++active;
    double precision = predicted > 0 ? static_cast<double>(tp) / predicted
                                     : 0.0;
    double recall = support > 0 ? static_cast<double>(tp) / support : 0.0;
    double f1 = (precision + recall) > 0
                    ? 2 * precision * recall / (precision + recall)
                    : 0.0;
    precision_sum += precision;
    recall_sum += recall;
    f1_sum += f1;
    table.AddRow({std::to_string(c), Table::FormatDouble(precision, 3),
                  Table::FormatDouble(recall, 3), Table::FormatDouble(f1, 3),
                  std::to_string(support)});
  }
  if (active > 0) {
    table.AddRow({"macro avg", Table::FormatDouble(precision_sum / active, 3),
                  Table::FormatDouble(recall_sum / active, 3),
                  Table::FormatDouble(f1_sum / active, 3),
                  std::to_string(total_support)});
  }
  return table.ToText();
}

}  // namespace kvec
