// Evaluation metrics (paper §V-A.3): earliness, accuracy, macro-averaged
// precision / recall / F1, and the harmonic mean of accuracy and
// (1 - earliness).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kvec {

// One early-classification outcome for one key-value sequence S_k.
struct PredictionRecord {
  int true_label = 0;
  int predicted_label = 0;
  int observed_items = 0;  // n_k
  int sequence_length = 0;  // |S_k|
  // The classifier's probability for the predicted label at the halting
  // point (max softmax). 0 when the method does not expose confidences.
  double confidence = 0.0;
};

struct EvaluationSummary {
  double earliness = 0.0;  // mean over sequences of n_k / |S_k|
  double accuracy = 0.0;
  double macro_precision = 0.0;
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  double harmonic_mean = 0.0;  // HM of accuracy and (1 - earliness)
  int num_sequences = 0;
};

// Computes all metrics over `records`; `num_classes` bounds the labels.
EvaluationSummary Evaluate(const std::vector<PredictionRecord>& records,
                           int num_classes);

// HM as defined in the paper: 2 (1-E) A / ((1-E) + A); 0 when degenerate.
double HarmonicMean(double accuracy, double earliness);

// Confusion counts: matrix[truth][predicted].
std::vector<std::vector<int64_t>> ConfusionMatrix(
    const std::vector<PredictionRecord>& records, int num_classes);

// Per-class precision/recall/F1/support plus a macro-average row, rendered
// as an aligned text table (sklearn-style classification report).
std::string ClassificationReport(const std::vector<PredictionRecord>& records,
                                 int num_classes);

}  // namespace kvec

