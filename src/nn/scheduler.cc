#include "nn/scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kvec {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

LrScheduler::LrScheduler(Optimizer* optimizer)
    : optimizer_(optimizer), base_lr_(optimizer->learning_rate()) {
  KVEC_CHECK(optimizer_ != nullptr);
}

void LrScheduler::Step() {
  ++step_count_;
  optimizer_->set_learning_rate(ComputeLr(step_count_));
}

float LrScheduler::current_lr() const { return ComputeLr(step_count_); }

ConstantLr::ConstantLr(Optimizer* optimizer) : LrScheduler(optimizer) {}

float ConstantLr::ComputeLr(int step) const { return base_lr(); }

StepDecayLr::StepDecayLr(Optimizer* optimizer, int step_size, float gamma)
    : LrScheduler(optimizer), step_size_(step_size), gamma_(gamma) {
  KVEC_CHECK(step_size_ > 0) << "step_size must be positive";
}

float StepDecayLr::ComputeLr(int step) const {
  // Staircase decay: the integer division is the point — the exponent only
  // advances once per completed step_size_ steps.
  const int completed_stages = step / step_size_;
  return base_lr() * std::pow(gamma_, static_cast<float>(completed_stages));
}

ExponentialDecayLr::ExponentialDecayLr(Optimizer* optimizer, float gamma)
    : LrScheduler(optimizer), gamma_(gamma) {
  KVEC_CHECK(gamma_ > 0.0f);
}

float ExponentialDecayLr::ComputeLr(int step) const {
  return base_lr() * std::pow(gamma_, static_cast<float>(step));
}

CosineAnnealingLr::CosineAnnealingLr(Optimizer* optimizer, int total_steps,
                                     float min_lr)
    : LrScheduler(optimizer), total_steps_(total_steps), min_lr_(min_lr) {
  KVEC_CHECK(total_steps_ > 0) << "total_steps must be positive";
}

float CosineAnnealingLr::ComputeLr(int step) const {
  if (step >= total_steps_) return min_lr_;
  double progress = static_cast<double>(step) / total_steps_;
  double cosine = 0.5 * (1.0 + std::cos(kPi * progress));
  return min_lr_ + static_cast<float>((base_lr() - min_lr_) * cosine);
}

WarmupCosineLr::WarmupCosineLr(Optimizer* optimizer, int warmup_steps,
                               int total_steps, float min_lr)
    : LrScheduler(optimizer),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      min_lr_(min_lr) {
  KVEC_CHECK(warmup_steps_ >= 0);
  KVEC_CHECK(total_steps_ > warmup_steps_)
      << "total_steps must exceed warmup_steps";
}

float WarmupCosineLr::ComputeLr(int step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr() * static_cast<float>(step) / warmup_steps_;
  }
  if (step >= total_steps_) return min_lr_;
  double progress = static_cast<double>(step - warmup_steps_) /
                    (total_steps_ - warmup_steps_);
  double cosine = 0.5 * (1.0 + std::cos(kPi * progress));
  return min_lr_ + static_cast<float>((base_lr() - min_lr_) * cosine);
}

}  // namespace kvec
