#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

MaskedSelfAttention::MaskedSelfAttention(int dim, Rng& rng, int num_heads)
    : dim_(dim),
      num_heads_(num_heads),
      query_(dim, dim, rng, /*use_bias=*/false),
      key_(dim, dim, rng, /*use_bias=*/false),
      value_(dim, dim, rng, /*use_bias=*/false) {
  KVEC_CHECK(num_heads_ >= 1);
  KVEC_CHECK(dim_ % num_heads_ == 0)
      << "embed dim " << dim_ << " not divisible by " << num_heads_
      << " heads";
  if (num_heads_ > 1) {
    output_ = std::make_unique<Linear>(dim, dim, rng, /*use_bias=*/false);
  }
}

AttentionResult MaskedSelfAttention::Forward(const Tensor& x,
                                             const Tensor& mask) const {
  KVEC_CHECK_EQ(x.cols(), dim_);
  KVEC_CHECK_EQ(mask.rows(), x.rows());
  KVEC_CHECK_EQ(mask.cols(), x.rows());
  Tensor q = query_.Forward(x);
  Tensor k = key_.Forward(x);
  Tensor v = value_.Forward(x);

  if (num_heads_ == 1) {
    Tensor scores =
        ops::Affine(ops::MatMulTransposeB(q, k),
                    1.0f / std::sqrt(static_cast<float>(dim_)), 0.0f);
    Tensor weights = ops::MaskedSoftmax(scores, mask);
    Tensor output = ops::MatMul(weights, v);
    return {output, weights};
  }

  const int head_dim = dim_ / num_heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::vector<Tensor> head_outputs;
  std::vector<Tensor> head_weights;
  head_outputs.reserve(num_heads_);
  head_weights.reserve(num_heads_);
  for (int h = 0; h < num_heads_; ++h) {
    const int begin = h * head_dim, end = begin + head_dim;
    Tensor qh = ops::SliceCols(q, begin, end);
    Tensor kh = ops::SliceCols(k, begin, end);
    Tensor vh = ops::SliceCols(v, begin, end);
    Tensor scores = ops::Affine(ops::MatMulTransposeB(qh, kh), scale, 0.0f);
    Tensor weights = ops::MaskedSoftmax(scores, mask);
    head_outputs.push_back(ops::MatMul(weights, vh));
    head_weights.push_back(weights);
  }
  // Single n-ary concat/sum nodes instead of O(heads) chained pairwise ops.
  Tensor output = output_->Forward(ops::ConcatColsN(head_outputs));
  Tensor mean_weights = ops::Affine(
      ops::AddN(head_weights), 1.0f / static_cast<float>(num_heads_), 0.0f);
  return {output, mean_weights};
}

void MaskedSelfAttention::CollectParameters(std::vector<Tensor>* out) {
  query_.CollectParameters(out);
  key_.CollectParameters(out);
  value_.CollectParameters(out);
  if (output_ != nullptr) output_->CollectParameters(out);
}

AttentionBlock::AttentionBlock(int dim, int ffn_hidden_dim, float dropout,
                               Rng& rng, int num_heads)
    : attention_(dim, rng, num_heads),
      ffn_(dim, ffn_hidden_dim, rng),
      norm_attention_(dim),
      norm_ffn_(dim),
      dropout_(dropout) {}

AttentionResult AttentionBlock::Forward(const Tensor& x, const Tensor& mask,
                                        Rng& rng, bool training) const {
  AttentionResult attended = attention_.Forward(x, mask);
  Tensor h = ops::Dropout(attended.output, dropout_, rng, training);
  h = norm_attention_.Forward(ops::Add(x, h));
  Tensor f = ops::Dropout(ffn_.Forward(h), dropout_, rng, training);
  Tensor out = norm_ffn_.Forward(ops::Add(h, f));
  return {out, attended.weights};
}

void AttentionBlock::CollectParameters(std::vector<Tensor>* out) {
  attention_.CollectParameters(out);
  ffn_.CollectParameters(out);
  norm_attention_.CollectParameters(out);
  norm_ffn_.CollectParameters(out);
}

}  // namespace kvec
