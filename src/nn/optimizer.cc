#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace kvec {

Optimizer::Optimizer(std::vector<Tensor> params, float learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {
  for (const Tensor& param : params_) {
    KVEC_CHECK(param.defined());
    KVEC_CHECK(param.requires_grad())
        << "optimizer parameter does not require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& param : params_) param.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float learning_rate, float momentum)
    : Optimizer(std::move(params), learning_rate), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(params_[i].data().size(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].impl()->data;
    const auto& grad = params_[i].grad();
    if (momentum_ == 0.0f) {
      for (size_t j = 0; j < data.size(); ++j) {
        data[j] -= learning_rate_ * grad[j];
      }
    } else {
      auto& velocity = velocity_[i];
      for (size_t j = 0; j < data.size(); ++j) {
        velocity[j] = momentum_ * velocity[j] + grad[j];
        data[j] -= learning_rate_ * velocity[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float learning_rate, float beta1,
           float beta2, float eps)
    : Optimizer(std::move(params), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  first_moment_.resize(params_.size());
  second_moment_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    first_moment_[i].assign(params_[i].data().size(), 0.0f);
    second_moment_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].impl()->data;
    const auto& grad = params_[i].grad();
    auto& m = first_moment_[i];
    auto& v = second_moment_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

AdamW::AdamW(std::vector<Tensor> params, float learning_rate,
             float weight_decay, float beta1, float beta2, float eps)
    : Optimizer(std::move(params), learning_rate),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  first_moment_.resize(params_.size());
  second_moment_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    first_moment_[i].assign(params_[i].data().size(), 0.0f);
    second_moment_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void AdamW::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].impl()->data;
    const auto& grad = params_[i].grad();
    auto& m = first_moment_[i];
    auto& v = second_moment_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      // Decoupled decay: shrink the weight before the adaptive update.
      data[j] -= learning_rate_ * weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad[j] * grad[j];
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

RmsProp::RmsProp(std::vector<Tensor> params, float learning_rate, float decay,
                 float momentum, float eps)
    : Optimizer(std::move(params), learning_rate),
      decay_(decay),
      momentum_(momentum),
      eps_(eps) {
  mean_square_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    mean_square_[i].assign(params_[i].data().size(), 0.0f);
  }
  if (momentum_ != 0.0f) {
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
      velocity_[i].assign(params_[i].data().size(), 0.0f);
    }
  }
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].impl()->data;
    const auto& grad = params_[i].grad();
    auto& ms = mean_square_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      ms[j] = decay_ * ms[j] + (1.0f - decay_) * grad[j] * grad[j];
      float update = grad[j] / (std::sqrt(ms[j]) + eps_);
      if (momentum_ == 0.0f) {
        data[j] -= learning_rate_ * update;
      } else {
        auto& velocity = velocity_[i];
        velocity[j] = momentum_ * velocity[j] + update;
        data[j] -= learning_rate_ * velocity[j];
      }
    }
  }
}

}  // namespace kvec
