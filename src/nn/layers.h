// Basic trainable layers: Linear, Embedding, LayerNorm, FeedForward, and a
// small multi-layer perceptron used by the ECTL baseline network.
#pragma once

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {

// y = x W + b, with W [in,out]. `use_bias` controls b.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool use_bias = true);

  Tensor Forward(const Tensor& x) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;
  Tensor bias_;  // undefined when use_bias == false
};

// Learned lookup table mapping token ids to d-dimensional rows.
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng& rng);

  // [indices.size(), dim]
  Tensor Forward(const std::vector<int>& indices) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  int vocab_size() const { return table_.rows(); }
  int dim() const { return table_.cols(); }
  const Tensor& table() const { return table_; }

 private:
  Tensor table_;
};

// Row-wise layer normalisation with learnable gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  Tensor Forward(const Tensor& x) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }

 private:
  Tensor gamma_;
  Tensor beta_;
};

// The paper's position-wise FFN: W2 ReLU(W1 x + b1) + b2.
class FeedForward : public Module {
 public:
  FeedForward(int dim, int hidden_dim, Rng& rng);

  Tensor Forward(const Tensor& x) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  const Linear& first() const { return first_; }
  const Linear& second() const { return second_; }

 private:
  Linear first_;
  Linear second_;
};

// A ReLU MLP with arbitrary layer sizes; used for the ECTL baseline
// state-value network b(s; θ_b).
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& layer_sizes, Rng& rng);

  Tensor Forward(const Tensor& x) const;

  void CollectParameters(std::vector<Tensor>* out) override;

 private:
  std::vector<Linear> layers_;
};

}  // namespace kvec

