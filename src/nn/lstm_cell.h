// The embedding-fusion cell of KVRL (paper §IV-B, "Embedding Fusion").
//
// An LSTM-style gated cell adapted to fuse the per-item attention embedding
// E(t)_e into the running sequence representation s(t)_k:
//
//   f_t = σ(W_f [s_{t-1}; E_t] + b_f)        forget gate
//   i_t = σ(W_i [s_{t-1}; E_t] + b_i)        input gate
//   o_t = σ(W_o [s_{t-1}; E_t] + b_o)        output gate
//   C_t = f_t ⊙ C_{t-1} + i_t ⊙ tanh(W_c [s_{t-1}; E_t] + b_c)
//   s_t = o_t ⊙ tanh(C_t)
#pragma once

#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {

// Hidden state of one key-value sequence: (s, C) pair, each [1, state_dim].
struct LstmState {
  Tensor hidden;  // s_t, the sequence representation
  Tensor cell;    // C_t

  bool defined() const { return hidden.defined(); }
};

class LstmFusionCell : public Module {
 public:
  LstmFusionCell(int input_dim, int state_dim, Rng& rng);

  // Initial all-zero state (a graph leaf).
  LstmState InitialState() const;

  // One fusion step; `input` is the item embedding E(t)_e ([1, input_dim]).
  LstmState Step(const LstmState& previous, const Tensor& input) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  int input_dim() const { return input_dim_; }
  int state_dim() const { return state_dim_; }

 private:
  int input_dim_;
  int state_dim_;
  Linear forget_gate_;
  Linear input_gate_;
  Linear output_gate_;
  Linear candidate_;
};

}  // namespace kvec

