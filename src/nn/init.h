// Parameter initialisation schemes.
#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {
namespace nn {

// Uniform(-a, a) with a = sqrt(6 / (fan_in + fan_out)) (Glorot & Bengio).
Tensor XavierUniform(int rows, int cols, Rng& rng);

// N(0, stddev^2) entries.
Tensor NormalInit(int rows, int cols, float stddev, Rng& rng);

// All-zero parameter (biases).
Tensor ZeroInit(int rows, int cols);

}  // namespace nn
}  // namespace kvec

