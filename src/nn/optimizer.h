// First-order optimizers operating in place on parameter tensors.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace kvec {

class Optimizer {
 public:
  Optimizer(std::vector<Tensor> params, float learning_rate);
  virtual ~Optimizer() = default;

  // Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  // Clears accumulated gradients; call after Step().
  void ZeroGrad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
  float learning_rate_;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float learning_rate, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

// Adam (Kingma & Ba, 2015) — the optimizer the paper trains with.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

// AdamW (Loshchilov & Hutter, 2019): Adam with *decoupled* weight decay —
// the decay is applied directly to the weights instead of being folded into
// the gradient, so it is not rescaled by the adaptive step size.
class AdamW : public Optimizer {
 public:
  AdamW(std::vector<Tensor> params, float learning_rate,
        float weight_decay = 1e-2f, float beta1 = 0.9f, float beta2 = 0.999f,
        float eps = 1e-8f);

  void Step() override;

  float weight_decay() const { return weight_decay_; }

 private:
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> first_moment_;
  std::vector<std::vector<float>> second_moment_;
};

// RMSprop (Tieleman & Hinton, 2012) with optional momentum: divides the
// gradient by a running root-mean-square of recent gradients.
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Tensor> params, float learning_rate,
          float decay = 0.99f, float momentum = 0.0f, float eps = 1e-8f);

  void Step() override;

 private:
  float decay_;
  float momentum_;
  float eps_;
  std::vector<std::vector<float>> mean_square_;
  std::vector<std::vector<float>> velocity_;  // allocated iff momentum != 0
};

}  // namespace kvec

