#include "nn/lstm_cell.h"

#include "tensor/ops.h"
#include "util/check.h"

namespace kvec {

LstmFusionCell::LstmFusionCell(int input_dim, int state_dim, Rng& rng)
    : input_dim_(input_dim),
      state_dim_(state_dim),
      forget_gate_(input_dim + state_dim, state_dim, rng),
      input_gate_(input_dim + state_dim, state_dim, rng),
      output_gate_(input_dim + state_dim, state_dim, rng),
      candidate_(input_dim + state_dim, state_dim, rng) {
  KVEC_CHECK_GT(input_dim, 0);
  KVEC_CHECK_GT(state_dim, 0);
  // Standard LSTM trick: bias the forget gate open so early training does
  // not erase the cell memory.
  for (float& v : forget_gate_.bias().impl()->data) v = 1.0f;
}

LstmState LstmFusionCell::InitialState() const {
  return {Tensor::Zeros(1, state_dim_), Tensor::Zeros(1, state_dim_)};
}

LstmState LstmFusionCell::Step(const LstmState& previous,
                               const Tensor& input) const {
  KVEC_CHECK(previous.defined());
  KVEC_CHECK_EQ(input.cols(), input_dim_);
  Tensor joined = ops::ConcatCols(previous.hidden, input);
  Tensor forget = ops::Sigmoid(forget_gate_.Forward(joined));
  Tensor in = ops::Sigmoid(input_gate_.Forward(joined));
  Tensor out = ops::Sigmoid(output_gate_.Forward(joined));
  Tensor candidate = ops::Tanh(candidate_.Forward(joined));
  // Fused update ops: 2 graph nodes for the state math instead of 5, which
  // matters on the serving path where Step runs once per stream item.
  Tensor cell = ops::FusedMulAdd(forget, previous.cell, in, candidate);
  Tensor hidden = ops::MulTanh(out, cell);
  return {hidden, cell};
}

void LstmFusionCell::CollectParameters(std::vector<Tensor>* out) {
  forget_gate_.CollectParameters(out);
  input_gate_.CollectParameters(out);
  output_gate_.CollectParameters(out);
  candidate_.CollectParameters(out);
}

}  // namespace kvec
