#include "nn/init.h"

#include <cmath>

namespace kvec {
namespace nn {

Tensor XavierUniform(int rows, int cols, Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.data()) {
    v = static_cast<float>(rng.NextUniform(-bound, bound));
  }
  return t;
}

Tensor NormalInit(int rows, int cols, float stddev, Rng& rng) {
  Tensor t = Tensor::Zeros(rows, cols, /*requires_grad=*/true);
  for (float& v : t.data()) {
    v = stddev * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

Tensor ZeroInit(int rows, int cols) {
  return Tensor::Zeros(rows, cols, /*requires_grad=*/true);
}

}  // namespace nn
}  // namespace kvec
