#include "nn/layers.h"

#include "nn/init.h"
#include "util/check.h"

namespace kvec {

Linear::Linear(int in_features, int out_features, Rng& rng, bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(nn::XavierUniform(in_features, out_features, rng)) {
  KVEC_CHECK_GT(in_features, 0);
  KVEC_CHECK_GT(out_features, 0);
  if (use_bias) bias_ = nn::ZeroInit(1, out_features);
}

Tensor Linear::Forward(const Tensor& x) const {
  KVEC_CHECK_EQ(x.cols(), in_features_) << "Linear input width mismatch";
  // Fused matmul+bias: one graph node and one output buffer instead of two.
  return ops::LinearForward(x, weight_, bias_);
}

void Linear::CollectParameters(std::vector<Tensor>* out) {
  out->push_back(weight_);
  if (bias_.defined()) out->push_back(bias_);
}

Embedding::Embedding(int vocab_size, int dim, Rng& rng)
    : table_(nn::NormalInit(vocab_size, dim, 0.02f, rng)) {
  KVEC_CHECK_GT(vocab_size, 0);
  KVEC_CHECK_GT(dim, 0);
}

Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return ops::EmbeddingGather(table_, indices);
}

void Embedding::CollectParameters(std::vector<Tensor>* out) {
  out->push_back(table_);
}

LayerNorm::LayerNorm(int dim)
    : gamma_(Tensor::Full(1, dim, 1.0f, /*requires_grad=*/true)),
      beta_(nn::ZeroInit(1, dim)) {
  KVEC_CHECK_GT(dim, 0);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return ops::LayerNorm(x, gamma_, beta_);
}

void LayerNorm::CollectParameters(std::vector<Tensor>* out) {
  out->push_back(gamma_);
  out->push_back(beta_);
}

FeedForward::FeedForward(int dim, int hidden_dim, Rng& rng)
    : first_(dim, hidden_dim, rng), second_(hidden_dim, dim, rng) {}

Tensor FeedForward::Forward(const Tensor& x) const {
  return second_.Forward(ops::Relu(first_.Forward(x)));
}

void FeedForward::CollectParameters(std::vector<Tensor>* out) {
  first_.CollectParameters(out);
  second_.CollectParameters(out);
}

Mlp::Mlp(const std::vector<int>& layer_sizes, Rng& rng) {
  KVEC_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ops::Relu(h);
  }
  return h;
}

void Mlp::CollectParameters(std::vector<Tensor>* out) {
  for (Linear& layer : layers_) layer.CollectParameters(out);
}

}  // namespace kvec
