// Masked self-attention and the stacked attention block of the KVRL encoder.
//
// The paper modifies standard scaled dot-product self-attention by adding a
// *dynamic mask matrix* M(t) ∈ {0, -inf}^{t×t} encoding key correlation,
// value (session) correlation, and causality:
//
//     E' = Softmax((Q K^T + M) / sqrt(d)) V
//
// followed by a position-wise feed-forward layer. The block keeps the usual
// Transformer residual connections + layer norm (see DESIGN.md §4.3).
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {

// Output of an attention forward pass. `weights` are the post-softmax
// attention coefficients ([t,t]); the instrumentation in Fig. 10 reads them.
struct AttentionResult {
  Tensor output;
  Tensor weights;
};

// With `num_heads == 1` (the default) this is exactly the paper's operator:
// Softmax((Q K^T + M) / sqrt(d)) V, with no output projection. With more
// heads, Q/K/V are split column-wise into `num_heads` slices of d/num_heads,
// attention runs per head under the same mask, the head outputs are
// concatenated, and a learned output projection W_o mixes them (standard
// multi-head attention; an optional extension over the paper, see the
// ext_multihead bench). `weights` is the head-averaged attention matrix.
class MaskedSelfAttention : public Module {
 public:
  MaskedSelfAttention(int dim, Rng& rng, int num_heads = 1);

  // `x` is [t,d]; `mask` is a constant [t,t] tensor of {0, ops::kNegInf}.
  AttentionResult Forward(const Tensor& x, const Tensor& mask) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  const Linear& query() const { return query_; }
  const Linear& key() const { return key_; }
  const Linear& value() const { return value_; }
  // Head-mixing projection; only defined when num_heads > 1.
  const Linear* output_projection() const { return output_.get(); }
  int dim() const { return dim_; }
  int num_heads() const { return num_heads_; }
  int head_dim() const { return dim_ / num_heads_; }

 private:
  int dim_;
  int num_heads_;
  Linear query_;
  Linear key_;
  Linear value_;
  std::unique_ptr<Linear> output_;  // nullptr when num_heads == 1
};

// One encoder block: masked attention + FFN, each with residual + LayerNorm
// and dropout.
class AttentionBlock : public Module {
 public:
  AttentionBlock(int dim, int ffn_hidden_dim, float dropout, Rng& rng,
                 int num_heads = 1);

  AttentionResult Forward(const Tensor& x, const Tensor& mask, Rng& rng,
                          bool training) const;

  void CollectParameters(std::vector<Tensor>* out) override;

  const MaskedSelfAttention& attention() const { return attention_; }
  const FeedForward& ffn() const { return ffn_; }
  const LayerNorm& norm_attention() const { return norm_attention_; }
  const LayerNorm& norm_ffn() const { return norm_ffn_; }

 private:
  MaskedSelfAttention attention_;
  FeedForward ffn_;
  LayerNorm norm_attention_;
  LayerNorm norm_ffn_;
  float dropout_;
};

}  // namespace kvec

