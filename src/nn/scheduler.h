// Learning-rate schedules driving an Optimizer's learning rate over
// training. The paper trains at a fixed rate (1e-4 / 1e-3 depending on the
// dataset); schedules are provided for the scaled-down CPU runs, where a
// short warmup stabilises the REINFORCE term and a decaying tail improves
// the final accuracy/earliness trade-off (see the ext_schedulers bench).
//
// Usage:
//   Adam opt(model.Parameters(), 1e-3f);
//   CosineAnnealingLr schedule(&opt, /*total_steps=*/epochs);
//   for (...) { ...; opt.Step(); schedule.Step(); }
//
// `Step()` is designed to be called once per epoch, but nothing prevents a
// per-update granularity; `total_steps` just has to match.
#pragma once

#include "nn/optimizer.h"

namespace kvec {

class LrScheduler {
 public:
  // Does not take ownership; `optimizer` must outlive the scheduler. The
  // optimizer's current learning rate is captured as the base rate.
  explicit LrScheduler(Optimizer* optimizer);
  virtual ~LrScheduler() = default;

  // Advances the schedule by one step and writes the new rate into the
  // optimizer. The first call moves to step 1.
  void Step();

  // The rate the schedule prescribes for the current step (equals the
  // optimizer's rate after the last Step()).
  float current_lr() const;

  int step_count() const { return step_count_; }
  float base_lr() const { return base_lr_; }

 protected:
  // The learning rate at `step` (0 = before any Step() call). Must return
  // base_lr() at step 0 unless the schedule deliberately starts lower
  // (warmup).
  virtual float ComputeLr(int step) const = 0;

 private:
  Optimizer* optimizer_;
  float base_lr_;
  int step_count_ = 0;
};

// No-op schedule; keeps the base rate forever. Useful as a default so
// callers can hold an LrScheduler unconditionally.
class ConstantLr : public LrScheduler {
 public:
  explicit ConstantLr(Optimizer* optimizer);

 protected:
  float ComputeLr(int step) const override;
};

// Multiplies the rate by `gamma` every `step_size` steps:
// lr = base * gamma^floor(step / step_size).
class StepDecayLr : public LrScheduler {
 public:
  StepDecayLr(Optimizer* optimizer, int step_size, float gamma = 0.1f);

 protected:
  float ComputeLr(int step) const override;

 private:
  int step_size_;
  float gamma_;
};

// lr = base * gamma^step.
class ExponentialDecayLr : public LrScheduler {
 public:
  ExponentialDecayLr(Optimizer* optimizer, float gamma);

 protected:
  float ComputeLr(int step) const override;

 private:
  float gamma_;
};

// Cosine annealing from the base rate to `min_lr` over `total_steps`
// (Loshchilov & Hutter, SGDR without restarts). Steps past `total_steps`
// stay at `min_lr`.
class CosineAnnealingLr : public LrScheduler {
 public:
  CosineAnnealingLr(Optimizer* optimizer, int total_steps,
                    float min_lr = 0.0f);

 protected:
  float ComputeLr(int step) const override;

 private:
  int total_steps_;
  float min_lr_;
};

// Linear ramp from 0 to the base rate over `warmup_steps`, then cosine
// annealing to `min_lr` at `total_steps`. The standard Transformer-training
// recipe, adapted to an epoch-granular schedule.
class WarmupCosineLr : public LrScheduler {
 public:
  WarmupCosineLr(Optimizer* optimizer, int warmup_steps, int total_steps,
                 float min_lr = 0.0f);

 protected:
  float ComputeLr(int step) const override;

 private:
  int warmup_steps_;
  int total_steps_;
  float min_lr_;
};

}  // namespace kvec

