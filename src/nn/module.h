// Base class for neural-network modules: a named parameter registry with
// checkpoint save/load and gradient bookkeeping.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/serialize.h"

namespace kvec {

class Module {
 public:
  virtual ~Module() = default;

  // Appends this module's parameters (and those of its submodules) to `out`.
  // The returned tensors alias the module's storage, so optimizer updates
  // through them are visible to the module.
  virtual void CollectParameters(std::vector<Tensor>* out) = 0;

  std::vector<Tensor> Parameters();

  // Zeroes the gradient buffers of all parameters.
  void ZeroGrad();

  // Total number of scalar parameters.
  int64_t ParameterCount();

  // Serialises parameter values (shapes included, order-dependent).
  void SaveParameters(BinaryWriter* writer);

  // Restores parameter values; returns false on shape mismatch or a
  // malformed stream.
  bool LoadParameters(BinaryReader* reader);
};

// Sum over parameters of the squared L2 gradient norm, then rescales all
// gradients so their global norm is at most `max_norm`. Returns the norm
// before clipping. A standard stabiliser for REINFORCE-style training.
double ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

}  // namespace kvec

