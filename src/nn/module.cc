#include "nn/module.h"

#include <cmath>

#include "util/check.h"

namespace kvec {

std::vector<Tensor> Module::Parameters() {
  std::vector<Tensor> params;
  CollectParameters(&params);
  return params;
}

void Module::ZeroGrad() {
  for (Tensor& param : Parameters()) param.ZeroGrad();
}

int64_t Module::ParameterCount() {
  int64_t total = 0;
  for (const Tensor& param : Parameters()) total += param.size();
  return total;
}

void Module::SaveParameters(BinaryWriter* writer) {
  std::vector<Tensor> params = Parameters();
  writer->WriteInt32(static_cast<int32_t>(params.size()));
  for (const Tensor& param : params) {
    writer->WriteInt32(param.rows());
    writer->WriteInt32(param.cols());
    writer->WriteFloatVector(param.data());
  }
}

bool Module::LoadParameters(BinaryReader* reader) {
  if (!reader->ok()) return false;
  std::vector<Tensor> params = Parameters();
  int32_t count = reader->ReadInt32();
  if (count != static_cast<int32_t>(params.size())) return false;
  // Stage every tensor before committing any: a truncated or mismatched
  // stream must leave the module's parameters untouched, not half-loaded.
  std::vector<std::vector<float>> staged;
  staged.reserve(params.size());
  for (Tensor& param : params) {
    int32_t rows = reader->ReadInt32();
    int32_t cols = reader->ReadInt32();
    if (!reader->ok() || rows != param.rows() || cols != param.cols()) {
      return false;
    }
    std::vector<float> values = reader->ReadFloatVector();
    if (values.size() != param.data().size()) return false;
    staged.push_back(std::move(values));
  }
  if (!reader->ok()) return false;
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].data() = std::move(staged[i]);
  }
  return true;
}

double ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  KVEC_CHECK_GT(max_norm, 0.0);
  double total_sq = 0.0;
  for (const Tensor& param : params) {
    for (float g : param.grad()) total_sq += static_cast<double>(g) * g;
  }
  double norm = std::sqrt(total_sq);
  if (norm > max_norm) {
    float scale = static_cast<float>(max_norm / (norm + 1e-12));
    for (const Tensor& param : params) {
      auto& grad = param.impl()->grad;
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace kvec
