// Wire framing for the TCP ingest protocol (docs/SERVING.md, "Network
// front end").
//
// Every message on the wire is one length-prefixed frame:
//
//   uint32  magic           'KVNF' — rejects non-protocol peers instantly
//   uint16  protocol version
//   uint16  frame type      (FrameType below)
//   uint64  request id      echoed verbatim in the response frame
//   uint32  payload length  in bytes, hard-capped by max_frame_bytes
//   byte*   payload         a BinaryWriter value stream (util/serialize.h)
//
// All header fields are raw little-endian, matching the checkpoint
// container's convention. The header is fixed-size (20 bytes), so a
// decoder can validate magic, version, AND the length prefix before a
// single payload byte is buffered — a corrupt or malicious length (the
// classic hostile 4 GiB prefix) is rejected up front and can never drive
// an allocation. Payloads are decoded through the fail-closed
// BinaryReader, so truncated or reordered values inside a structurally
// valid frame also fail cleanly instead of producing garbage items.
//
// FrameDecoder is incremental: feed it whatever chunks recv() produced and
// pull complete frames out. Its buffered bytes are bounded by
// max_frame_bytes + one header + one read chunk, never by what a hostile
// length prefix claims.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/types.h"

namespace kvec {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x4b564e46u;  // "FNVK" on the wire
inline constexpr uint16_t kFrameProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
// Default hard cap on one frame's payload. Generous for microbatches (a
// 4 MiB frame holds ~100k items) yet small enough that max_connections
// concurrent read buffers stay bounded.
inline constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

// Request types occupy [1, 63], responses [64, 126], errors 127. A server
// answers every request frame with exactly one response or error frame
// carrying the same request id.
enum class FrameType : uint16_t {
  // Requests (client → server).
  kHello = 1,        // schema registration cold path; must precede ingest
  kIngestBatch = 2,  // microbatch hot path
  kStatsQuery = 3,   // merged serving/transport stats
  kFlush = 4,        // force-classify all open keys
  // Responses (server → client).
  kHelloAck = 64,
  kIngestAck = 65,
  kStatsReply = 66,
  kFlushAck = 67,
  kError = 127,
};

// Error-frame codes. kMalformed closes the connection (the stream can no
// longer be trusted); kOverloaded keeps it open and tells the client to
// back off; kShuttingDown means the server is draining.
enum class ErrorCode : int32_t {
  kMalformed = 1,
  kOverloaded = 2,
  kShuttingDown = 3,
  kUnsupported = 4,
};

const char* FrameTypeName(FrameType type);
const char* ErrorCodeName(ErrorCode code);

struct Frame {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  std::string payload;
};

// Frames `frame` into wire bytes (header + payload). Always succeeds; the
// caller is responsible for keeping payloads under the peer's cap.
std::string EncodeFrame(const Frame& frame);

// Incremental frame decoder over a byte stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,   // no complete frame buffered yet
    kFrame,      // *out holds the next frame
    kMalformed,  // bad magic/version or oversized length: close the peer
  };

  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  // Appends raw received bytes. Safe to call with any chunking, including
  // one byte at a time (torn frames are the normal case, not an error).
  void Feed(const char* data, size_t size);

  // Extracts the next complete frame. After kMalformed the decoder is
  // poisoned: every later call also reports kMalformed (the byte stream
  // has lost synchronisation and must be abandoned).
  Status Next(Frame* out, std::string* error);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already handed out as frames
  bool malformed_ = false;
  std::string malformed_reason_;
};

// ---- Payload codecs ------------------------------------------------------
//
// Every payload is a BinaryWriter value stream; decode helpers return
// false on any truncation/corruption (BinaryReader fails closed and the
// helpers demand the payload is fully consumed).

// kHello: the client's dataset shape. The server accepts only a shape its
// model can embed (same guard as the CLI's SpecCompatible).
struct HelloRequest {
  int32_t num_value_fields = 0;
  int32_t num_classes = 0;
};
std::string EncodeHello(const HelloRequest& hello);
bool DecodeHello(const std::string& payload, HelloRequest* out);

// kIngestBatch: a microbatch of items.
std::string EncodeItems(const std::vector<Item>& items);
bool DecodeItems(const std::string& payload, std::vector<Item>* out);

// kIngestAck: what happened to the batch.
struct IngestAck {
  int64_t accepted = 0;  // items queued for processing
  int64_t shed = 0;      // items dropped by the overload policy
};
std::string EncodeIngestAck(const IngestAck& ack);
bool DecodeIngestAck(const std::string& payload, IngestAck* out);

// kStatsReply: the transport + serving counters a remote client can see.
struct StatsReply {
  int64_t items_submitted = 0;
  int64_t items_processed = 0;
  int64_t items_shed = 0;
  int64_t sequences_classified = 0;
  int64_t open_keys = 0;
};
std::string EncodeStatsReply(const StatsReply& stats);
bool DecodeStatsReply(const std::string& payload, StatsReply* out);

// kFlushAck: how many verdicts the flush emitted.
struct FlushAck {
  int64_t events = 0;
};
std::string EncodeFlushAck(const FlushAck& ack);
bool DecodeFlushAck(const std::string& payload, FlushAck* out);

// kError: code + human-readable detail, plus the ingest accounting when
// the error answers an ingest frame (zero otherwise) so an OVERLOADED
// response still tells the client exactly what was dropped.
struct ErrorFrame {
  ErrorCode code = ErrorCode::kMalformed;
  std::string message;
  int64_t accepted = 0;
  int64_t shed = 0;
};
std::string EncodeError(const ErrorFrame& error);
bool DecodeError(const std::string& payload, ErrorFrame* out);

}  // namespace net
}  // namespace kvec
