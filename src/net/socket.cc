#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/fault_injection.h"

namespace kvec {
namespace net {
namespace {

// Resolves the numeric-IPv4-or-localhost `host` into `*addr`.
bool FillAddress(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  return inet_pton(AF_INET, numeric.c_str(), &addr->sin_addr) == 1;
}

// Waits until `fd` is ready for `events` or `timeout_ms` passes. Returns
// kOk / kTimeout / kError.
IoStatus PollFor(int fd, short events, int timeout_ms) {
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready > 0) return IoStatus::kOk;
    if (ready == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

// Remaining budget of an absolute deadline, clamped to >= 0.
int RemainingMs(int64_t deadline_ms) {
  const int64_t left = deadline_ms - SteadyNowMs();
  if (left <= 0) return 0;
  if (left > 1 << 30) return 1 << 30;
  return static_cast<int>(left);
}

}  // namespace

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kTimeout:
      return "timeout";
    case IoStatus::kClosed:
      return "closed";
    case IoStatus::kError:
      return "error";
  }
  return "unknown";
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool DeadlineExpired(int64_t deadline_ms) {
  // Failable point: an armed hook expires any deadline instantly, which is
  // how tests force the idle-timeout eviction path without real waiting.
  if (KVEC_FAULT_POINT("net.deadline")) return true;
  return SteadyNowMs() >= deadline_ms;
}

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

IoStatus Socket::SendAll(const char* data, size_t size, int timeout_ms) {
  if (fd_ < 0) return IoStatus::kClosed;
  // Failable point: an armed hook makes the write fail as if the peer
  // vanished mid-frame (torn write from the receiver's point of view).
  if (KVEC_FAULT_POINT("net.write_frame")) return IoStatus::kError;
  const int64_t deadline = SteadyNowMs() + timeout_ms;
  size_t sent = 0;
  while (sent < size) {
    const IoStatus ready = PollFor(fd_, POLLOUT, RemainingMs(deadline));
    if (ready != IoStatus::kOk) return ready;
    const ssize_t n =
        send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::kClosed
                                                 : IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus Socket::RecvSome(char* data, size_t size, int timeout_ms,
                          size_t* received) {
  *received = 0;
  if (fd_ < 0) return IoStatus::kClosed;
  // Failable point: an armed hook turns this read into a disconnect,
  // which is how tests tear a frame mid-payload deterministically.
  if (KVEC_FAULT_POINT("net.read_frame")) return IoStatus::kClosed;
  const IoStatus ready = PollFor(fd_, POLLIN, timeout_ms);
  if (ready != IoStatus::kOk) return ready;
  for (;;) {
    const ssize_t n = recv(fd_, data, size, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    return errno == ECONNRESET ? IoStatus::kClosed : IoStatus::kError;
  }
}

Socket Socket::Connect(const std::string& host, uint16_t port,
                       int timeout_ms, std::string* error) {
  sockaddr_in addr;
  if (!FillAddress(host, port, &addr)) {
    *error = "cannot parse host '" + host + "' (numeric IPv4 or localhost)";
    return Socket();
  }
  Socket sock(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return Socket();
  }
  // Non-blocking connect so the timeout is enforceable.
  const int flags = fcntl(sock.fd(), F_GETFL, 0);
  fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
  if (connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    *error = std::string("connect(): ") + std::strerror(errno);
    return Socket();
  }
  if (PollFor(sock.fd(), POLLOUT, timeout_ms) != IoStatus::kOk) {
    *error = "connect timeout to " + host + ":" + std::to_string(port);
    return Socket();
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    *error = std::string("connect(): ") +
             std::strerror(so_error != 0 ? so_error : errno);
    return Socket();
  }
  fcntl(sock.fd(), F_SETFL, flags);  // back to blocking; IO is poll-paced
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

ListenSocket ListenSocket::Bind(const std::string& host, uint16_t port,
                                int backlog, std::string* error) {
  sockaddr_in addr;
  if (!FillAddress(host, port, &addr)) {
    *error = "cannot parse host '" + host + "' (numeric IPv4 or localhost)";
    return ListenSocket();
  }
  ListenSocket sock;
  sock.fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock.fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return ListenSocket();
  }
  int one = 1;
  setsockopt(sock.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(sock.fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    *error = "bind(" + host + ":" + std::to_string(port) +
             "): " + std::strerror(errno);
    return ListenSocket();
  }
  if (listen(sock.fd_, backlog) != 0) {
    *error = std::string("listen(): ") + std::strerror(errno);
    return ListenSocket();
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(sock.fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    *error = std::string("getsockname(): ") + std::strerror(errno);
    return ListenSocket();
  }
  sock.port_ = ntohs(bound.sin_port);
  return sock;
}

Socket ListenSocket::Accept(int timeout_ms, bool* timed_out) {
  *timed_out = false;
  if (fd_ < 0) return Socket();
  const IoStatus ready = PollFor(fd_, POLLIN, timeout_ms);
  if (ready == IoStatus::kTimeout) {
    *timed_out = true;
    return Socket();
  }
  if (ready != IoStatus::kOk) return Socket();
  const int fd = accept(fd_, nullptr, nullptr);
  if (fd < 0) return Socket();
  Socket sock(fd);
  // Failable point: an armed hook drops the connection at the threshold,
  // as if the client vanished between connect and first byte.
  if (KVEC_FAULT_POINT("net.accept")) return Socket();
  int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace net
}  // namespace kvec
