#include "net/tcp_ingest_server.h"

#include <algorithm>
#include <utility>

namespace kvec {
namespace net {
namespace {

// Accept-poll and read-slice granularity: how quickly a handler notices
// stop requests and expired deadlines. Short enough for responsive
// shutdown, long enough that idle polling costs nothing measurable.
constexpr int kPollSliceMs = 50;

constexpr size_t kReadChunkBytes = 16 * 1024;

}  // namespace

TcpIngestServer::TcpIngestServer(ShardedStreamServer* server,
                                 const TcpIngestServerConfig& config)
    : server_(server), config_(config) {}

TcpIngestServer::~TcpIngestServer() { Shutdown(); }

bool TcpIngestServer::Start(std::string* error) {
  listener_ = ListenSocket::Bind(config_.host, config_.port,
                                 config_.backlog, error);
  if (!listener_.valid()) return false;
  started_ = true;
  accept_thread_ = std::thread(&TcpIngestServer::AcceptLoop, this);
  return true;
}

void TcpIngestServer::Shutdown() {
  if (!started_) return;
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  // Half-close first so every handler wakes with EOF and finishes its
  // buffered requests; only then join. Handlers never close() their fd
  // (only shutdown()), so these cross-thread ShutdownRead calls can
  // never land on a recycled fd; the fds close when the Connection
  // objects are destroyed below, after their threads are joined.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    connection->socket.ShutdownRead();
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

TcpIngestServerStats TcpIngestServer::stats() const {
  TcpIngestServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.connections_evicted_idle =
      connections_evicted_idle_.load(std::memory_order_relaxed);
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.frames_malformed = frames_malformed_.load(std::memory_order_relaxed);
  stats.batches_ingested = batches_ingested_.load(std::memory_order_relaxed);
  stats.items_accepted = items_accepted_.load(std::memory_order_relaxed);
  stats.items_shed = items_shed_.load(std::memory_order_relaxed);
  stats.errors_sent = errors_sent_.load(std::memory_order_relaxed);
  return stats;
}

int TcpIngestServer::active_connections() const {
  MutexLock lock(mutex_);
  int active = 0;
  for (const auto& connection : connections_) {
    if (!connection->done.load(std::memory_order_acquire)) ++active;
  }
  return active;
}

void TcpIngestServer::ReapFinished() {
  MutexLock lock(mutex_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpIngestServer::AcceptLoop() {
  while (!stopping_.load()) {
    bool timed_out = false;
    Socket socket = listener_.Accept(kPollSliceMs, &timed_out);
    ReapFinished();
    if (!socket.valid()) continue;
    if (stopping_.load()) {
      // Drain began between poll and accept: tell the peer explicitly
      // instead of a silent close.
      ErrorFrame error;
      error.code = ErrorCode::kShuttingDown;
      error.message = "server is draining";
      const std::string bytes = EncodeFrame(
          {FrameType::kError, 0, EncodeError(error)});
      socket.SendAll(bytes.data(), bytes.size(), config_.io_timeout_ms);
      break;
    }
    if (active_connections() >= config_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ErrorFrame error;
      error.code = ErrorCode::kOverloaded;
      error.message = "connection limit (" +
                      std::to_string(config_.max_connections) + ") reached";
      const std::string bytes = EncodeFrame(
          {FrameType::kError, 0, EncodeError(error)});
      socket.SendAll(bytes.data(), bytes.size(), config_.io_timeout_ms);
      continue;  // RAII closes the rejected socket
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    MutexLock lock(mutex_);
    connections_.push_back(std::move(connection));
    Connection* raw = connections_.back().get();
    raw->thread =
        std::thread(&TcpIngestServer::HandleConnection, this, raw);
  }
}

void TcpIngestServer::HandleConnection(Connection* conn) {
  FrameDecoder decoder(config_.max_frame_bytes);
  bool hello_done = false;
  bool peer_gone = false;  // EOF/reset seen; drain buffered frames, then go
  int64_t deadline = SteadyNowMs() + config_.idle_timeout_ms;
  std::string chunk(kReadChunkBytes, '\0');
  for (;;) {
    Frame frame;
    std::string reason;
    const FrameDecoder::Status status = decoder.Next(&frame, &reason);
    if (status == FrameDecoder::Status::kFrame) {
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      deadline = SteadyNowMs() + config_.idle_timeout_ms;
      if (!HandleFrame(conn, frame, &hello_done)) break;
      continue;
    }
    if (status == FrameDecoder::Status::kMalformed) {
      frames_malformed_.fetch_add(1, std::memory_order_relaxed);
      // The stream has lost framing; request id 0 because the header
      // cannot be trusted. One diagnostic, then close.
      WriteError(conn, 0, ErrorCode::kMalformed, reason);
      break;
    }
    // kNeedMore.
    if (peer_gone) break;  // every fully-received request was answered
    if (DeadlineExpired(deadline)) {
      connections_evicted_idle_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    size_t received = 0;
    const IoStatus io = conn->socket.RecvSome(
        chunk.data(), chunk.size(), kPollSliceMs, &received);
    if (io == IoStatus::kOk) {
      decoder.Feed(chunk.data(), received);
    } else if (io != IoStatus::kTimeout) {
      // EOF, reset, or injected disconnect. A torn frame still buffered
      // is simply abandoned; complete ones are drained above.
      peer_gone = true;
    }
  }
  // Half-close only: the FIN reaches the peer now, but the fd number
  // stays reserved until the Connection is destroyed after this thread
  // is joined (ReapFinished or Shutdown). Closing here would release
  // the fd for kernel reuse while Shutdown() may still ShutdownRead()
  // it — aimed at a recycled, unrelated socket.
  conn->socket.ShutdownBoth();
  conn->done.store(true, std::memory_order_release);
}

bool TcpIngestServer::HandleFrame(Connection* conn, const Frame& frame,
                                  bool* hello_done) {
  switch (frame.type) {
    case FrameType::kHello: {
      HelloRequest hello;
      if (!DecodeHello(frame.payload, &hello)) {
        frames_malformed_.fetch_add(1, std::memory_order_relaxed);
        WriteError(conn, frame.request_id, ErrorCode::kMalformed,
                   "bad hello payload");
        return false;
      }
      if (hello.num_value_fields != config_.num_value_fields ||
          hello.num_classes != config_.num_classes) {
        WriteError(conn, frame.request_id, ErrorCode::kUnsupported,
                   "dataset shape mismatch: server expects " +
                       std::to_string(config_.num_value_fields) +
                       " value fields / " +
                       std::to_string(config_.num_classes) + " classes");
        return false;
      }
      *hello_done = true;
      return WriteFrame(conn,
                        {FrameType::kHelloAck, frame.request_id, ""});
    }
    case FrameType::kIngestBatch: {
      if (!*hello_done) {
        // Protocol misuse, but the stream is still framed: answer and
        // keep the connection so the client can hello and proceed.
        return WriteError(conn, frame.request_id, ErrorCode::kUnsupported,
                          "hello must precede ingest");
      }
      std::vector<Item> items;
      if (!DecodeItems(frame.payload, &items)) {
        frames_malformed_.fetch_add(1, std::memory_order_relaxed);
        WriteError(conn, frame.request_id, ErrorCode::kMalformed,
                   "bad ingest payload");
        return false;
      }
      const int64_t total = static_cast<int64_t>(items.size());
      const int64_t shed = server_->Submit(items);
      const int64_t accepted = total - shed;
      batches_ingested_.fetch_add(1, std::memory_order_relaxed);
      items_accepted_.fetch_add(accepted, std::memory_order_relaxed);
      items_shed_.fetch_add(shed, std::memory_order_relaxed);
      if (shed > 0) {
        return WriteError(conn, frame.request_id, ErrorCode::kOverloaded,
                          "shard queues full: back off and retry",
                          accepted, shed);
      }
      IngestAck ack;
      ack.accepted = accepted;
      return WriteFrame(conn, {FrameType::kIngestAck, frame.request_id,
                               EncodeIngestAck(ack)});
    }
    case FrameType::kStatsQuery: {
      const StreamServerStats merged = server_->stats();
      StatsReply reply;
      reply.items_submitted = merged.items_submitted;
      reply.items_processed = merged.items_processed;
      reply.items_shed = merged.items_shed;
      reply.sequences_classified = merged.sequences_classified;
      reply.open_keys = server_->open_keys();
      return WriteFrame(conn, {FrameType::kStatsReply, frame.request_id,
                               EncodeStatsReply(reply)});
    }
    case FrameType::kFlush: {
      FlushAck ack;
      ack.events = static_cast<int64_t>(server_->Flush().size());
      return WriteFrame(conn, {FrameType::kFlushAck, frame.request_id,
                               EncodeFlushAck(ack)});
    }
    default:
      return WriteError(conn, frame.request_id, ErrorCode::kUnsupported,
                        std::string("unsupported frame type ") +
                            FrameTypeName(frame.type));
  }
}

bool TcpIngestServer::WriteFrame(Connection* conn, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  return conn->socket.SendAll(bytes.data(), bytes.size(),
                              config_.io_timeout_ms) == IoStatus::kOk;
}

bool TcpIngestServer::WriteError(Connection* conn, uint64_t request_id,
                                 ErrorCode code, const std::string& message,
                                 int64_t accepted, int64_t shed) {
  ErrorFrame error;
  error.code = code;
  error.message = message;
  error.accepted = accepted;
  error.shed = shed;
  const bool ok = WriteFrame(
      conn, {FrameType::kError, request_id, EncodeError(error)});
  if (ok) errors_sent_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

}  // namespace net
}  // namespace kvec
