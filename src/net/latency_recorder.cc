#include "net/latency_recorder.h"

#include <algorithm>
#include <cmath>

namespace kvec {
namespace net {
namespace {

// 32 sub-buckets per power-of-two range: relative error <= 1/32.
constexpr int kSubBucketBits = 5;
constexpr int64_t kSubBucketCount = int64_t{1} << kSubBucketBits;
// Highest exponent tracked exactly: values above ~2^41 µs (~25 days)
// clamp into the top bucket, which no sane benchmark ever reaches.
constexpr int kMaxExponent = 41;
constexpr size_t kNumBuckets =
    static_cast<size_t>(kSubBucketCount +
                        (kMaxExponent - kSubBucketBits + 1) * kSubBucketCount);

int FloorLog2(uint64_t value) {
  int log = 0;
  while (value >>= 1) ++log;
  return log;
}

}  // namespace

LatencyRecorder::LatencyRecorder() : buckets_(kNumBuckets, 0) {}

size_t LatencyRecorder::BucketIndex(int64_t micros) {
  if (micros < 0) micros = 0;
  if (micros < kSubBucketCount) return static_cast<size_t>(micros);
  int exponent = FloorLog2(static_cast<uint64_t>(micros));
  if (exponent > kMaxExponent) {
    return kNumBuckets - 1;
  }
  const int group = exponent - kSubBucketBits;
  const int64_t sub =
      (micros >> group) - kSubBucketCount;  // 0 .. kSubBucketCount-1
  return static_cast<size_t>(kSubBucketCount + group * kSubBucketCount + sub);
}

int64_t LatencyRecorder::BucketUpperBoundUs(size_t index) {
  if (index < static_cast<size_t>(kSubBucketCount)) {
    return static_cast<int64_t>(index);
  }
  const size_t offset = index - kSubBucketCount;
  const int group = static_cast<int>(offset / kSubBucketCount);
  const int64_t sub = static_cast<int64_t>(offset % kSubBucketCount);
  const int64_t lower = (kSubBucketCount + sub) << group;
  return lower + ((int64_t{1} << group) - 1);
}

void LatencyRecorder::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  buckets_[BucketIndex(micros)] += 1;
  if (count_ == 0 || micros < min_us_) min_us_ = micros;
  if (micros > max_us_) max_us_ = micros;
  sum_us_ += micros;
  count_ += 1;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_us_ < min_us_) min_us_ = other.min_us_;
  if (other.max_us_ > max_us_) max_us_ = other.max_us_;
  sum_us_ += other.sum_us_;
  count_ += other.count_;
}

int64_t LatencyRecorder::PercentileUs(double q) const {
  if (count_ == 0) return 0;
  q = std::max(0.0, std::min(1.0, q));
  const int64_t target =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * count_)));
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      // Never report beyond the observed extremes (the bucket's upper
      // bound can exceed max for sparse tails).
      return std::min(BucketUpperBoundUs(i), max_us_);
    }
  }
  return max_us_;
}

LatencySnapshot LatencyRecorder::Snapshot() const {
  LatencySnapshot snapshot;
  snapshot.count = count_;
  if (count_ == 0) return snapshot;
  snapshot.min_us = min_us_;
  snapshot.max_us = max_us_;
  snapshot.mean_us = static_cast<double>(sum_us_) / count_;
  snapshot.p50_us = PercentileUs(0.50);
  snapshot.p90_us = PercentileUs(0.90);
  snapshot.p99_us = PercentileUs(0.99);
  snapshot.p999_us = PercentileUs(0.999);
  return snapshot;
}

}  // namespace net
}  // namespace kvec
