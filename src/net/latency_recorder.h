// HdrHistogram-style latency recording for the load generator.
//
// Tail latency cannot be averaged: p999 over a million requests needs the
// full distribution, but storing a million samples per connection is
// wasteful and sorting them at the end is avoidable. The classic answer
// (Gil Tene's HdrHistogram) is a fixed array of buckets whose width grows
// geometrically: exact counts below 32 µs, then 32 sub-buckets per
// power-of-two range, giving a bounded relative error of at most 1/32
// (~3%) at any magnitude up to ~36 minutes — far tighter than the
// run-to-run noise of any real benchmark.
//
// Recording is a clamp + two integer ops + one array increment — no
// allocation, no lock. A recorder is single-threaded by design; each
// load-generator connection owns one and the results are Merge()d after
// the threads join, so the hot path stays uncontended (same pattern as
// the per-shard transport counters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kvec {
namespace net {

struct LatencySnapshot {
  int64_t count = 0;
  int64_t min_us = 0;
  int64_t max_us = 0;
  double mean_us = 0.0;
  // Upper bucket bounds: the reported value is >= the true percentile and
  // within ~3% of it.
  int64_t p50_us = 0;
  int64_t p90_us = 0;
  int64_t p99_us = 0;
  int64_t p999_us = 0;
};

class LatencyRecorder {
 public:
  LatencyRecorder();

  // Records one latency sample in microseconds (negative clamps to 0,
  // values beyond ~2^41 µs clamp to the top bucket).
  void Record(int64_t micros);

  // Adds `other`'s samples into this recorder (post-join aggregation).
  void Merge(const LatencyRecorder& other);

  int64_t count() const { return count_; }

  // The value at quantile `q` in [0, 1]: upper bound of the bucket holding
  // the ceil(q * count)-th smallest sample. 0 when empty.
  int64_t PercentileUs(double q) const;

  LatencySnapshot Snapshot() const;

 private:
  static std::size_t BucketIndex(int64_t micros);
  // Inclusive upper bound of the values mapping to `index`.
  static int64_t BucketUpperBoundUs(std::size_t index);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_us_ = 0;
  int64_t min_us_ = 0;
  int64_t max_us_ = 0;
};

}  // namespace net
}  // namespace kvec
