#include "net/loadgen.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace kvec {
namespace net {
namespace {

constexpr size_t kReadChunkBytes = 16 * 1024;

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Capped exponential backoff with jitter: attempt 1 waits ~backoff_ms,
// each further attempt doubles, growth stops at backoff_cap_ms, and the
// actual sleep is uniform in [delay/2, delay] so a fleet of clients
// knocked back by the same overload event does not retry in lockstep.
int64_t BackoffDelayMs(const LoadgenConfig& config, int attempt, Rng* rng) {
  int64_t delay = config.backoff_ms;
  for (int i = 1; i < attempt && delay < config.backoff_cap_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<int64_t>(delay, config.backoff_cap_ms);
  if (delay <= 1) return delay;
  return delay / 2 + static_cast<int64_t>(rng->NextInt(
                         static_cast<int>(delay - delay / 2 + 1)));
}

struct WorkerResult {
  int64_t batches_sent = 0;
  int64_t batches_failed = 0;
  int64_t items_acked = 0;
  int64_t items_shed = 0;
  int64_t retries = 0;
  int64_t overloaded_replies = 0;
  int64_t reconnects = 0;
  bool connected_once = false;
  std::string first_error;
  LatencyRecorder latency;
};

void NoteError(WorkerResult* out, const std::string& error) {
  if (out->first_error.empty() && !error.empty()) out->first_error = error;
}

bool ConnectAndHello(const LoadgenConfig& config, IngestClient* client,
                     WorkerResult* out) {
  std::string error;
  if (!client->Connect(&error) ||
      !client->Hello(config.num_value_fields, config.num_classes, &error)) {
    NoteError(out, error);
    client->Close();
    return false;
  }
  out->connected_once = true;
  return true;
}

// Delivers one batch under the retry budget. Returns true when the batch
// was acked; every terminal failure is already counted in *out.
bool DeliverBatch(const LoadgenConfig& config, const std::string& payload,
                  IngestClient* client, Rng* rng, WorkerResult* out) {
  for (int attempt = 0; attempt <= config.retries; ++attempt) {
    if (attempt > 0) {
      out->retries += 1;
      SleepMs(BackoffDelayMs(config, attempt, rng));
    }
    if (!client->connected()) {
      if (!ConnectAndHello(config, client, out)) continue;
      out->reconnects += 1;
    }
    Frame reply;
    const IngestClient::CallStatus status =
        client->Call(FrameType::kIngestBatch, payload, &reply);
    if (status != IngestClient::CallStatus::kOk) {
      // Timeout / disconnect / unframeable reply: the connection is
      // already closed; the next attempt reconnects.
      continue;
    }
    if (reply.type == FrameType::kIngestAck) {
      IngestAck ack;
      if (DecodeIngestAck(reply.payload, &ack)) {
        out->items_acked += ack.accepted;
      }
      out->batches_sent += 1;
      return true;
    }
    ErrorFrame error;
    if (reply.type != FrameType::kError ||
        !DecodeError(reply.payload, &error)) {
      client->Close();
      continue;
    }
    if (error.code == ErrorCode::kOverloaded) {
      // The shed part was dropped, the accepted part was enqueued; the
      // retry re-offers the whole batch (at-least-once is the loadgen's
      // contract — it measures delivery effort, not exactly-once).
      out->overloaded_replies += 1;
      out->items_acked += error.accepted;
      out->items_shed += error.shed;
      continue;
    }
    // MALFORMED / UNSUPPORTED / SHUTTING_DOWN: retrying the same bytes
    // cannot succeed.
    NoteError(out, std::string(ErrorCodeName(error.code)) + ": " +
                       error.message);
    out->batches_failed += 1;
    return false;
  }
  out->batches_failed += 1;
  return true;  // budget exhausted but counted; keep going with the next
}

void RunWorker(const LoadgenConfig& config, const std::vector<Item>& items,
               uint64_t seed, WorkerResult* out) {
  IngestClient client(config.client);
  Rng rng(seed);
  ConnectAndHello(config, &client, out);
  const int64_t start_ms = SteadyNowMs();
  const double interval_ms =
      config.rate > 0 ? 1000.0 / config.rate : 0.0;
  const size_t batch_size =
      config.batch_size > 0 ? static_cast<size_t>(config.batch_size) : 1;
  int64_t batch_index = 0;
  for (size_t offset = 0; offset < items.size(); offset += batch_size) {
    const size_t end = std::min(items.size(), offset + batch_size);
    const std::vector<Item> batch(items.begin() + offset,
                                  items.begin() + end);
    const std::string payload = EncodeItems(batch);
    if (interval_ms > 0) {
      const int64_t target =
          start_ms + static_cast<int64_t>(batch_index * interval_ms);
      SleepMs(target - SteadyNowMs());
    }
    ++batch_index;
    const int64_t t0_us = SteadyNowUs();
    if (DeliverBatch(config, payload, &client, &rng, out)) {
      out->latency.Record(SteadyNowUs() - t0_us);
    }
  }
  client.Close();
}

}  // namespace

IngestClient::IngestClient(const ClientConfig& config) : config_(config) {}

bool IngestClient::Connect(std::string* error) {
  Close();
  socket_ = Socket::Connect(config_.host, config_.port,
                            config_.connect_timeout_ms, error);
  if (!socket_.valid()) return false;
  decoder_.emplace(config_.max_frame_bytes);
  return true;
}

void IngestClient::Close() {
  socket_.Close();
  decoder_.reset();
}

IngestClient::CallStatus IngestClient::Call(FrameType type,
                                            const std::string& payload,
                                            Frame* reply) {
  if (!socket_.valid()) return CallStatus::kDisconnected;
  Frame request;
  request.type = type;
  request.request_id = next_request_id_++;
  request.payload = payload;
  const std::string bytes = EncodeFrame(request);
  if (socket_.SendAll(bytes.data(), bytes.size(),
                      config_.request_timeout_ms) != IoStatus::kOk) {
    Close();
    return CallStatus::kDisconnected;
  }
  // Client-side deadline checks are a plain clock comparison on purpose:
  // DeadlineExpired() fires the server-side `net.deadline` fault point,
  // and a test forcing server evictions must not also break its client.
  const int64_t deadline = SteadyNowMs() + config_.request_timeout_ms;
  std::string chunk(kReadChunkBytes, '\0');
  for (;;) {
    Frame frame;
    std::string reason;
    const FrameDecoder::Status status = decoder_->Next(&frame, &reason);
    if (status == FrameDecoder::Status::kFrame) {
      if (frame.request_id != request.request_id) {
        Close();  // a stray reply means the stream is out of sync
        return CallStatus::kBadReply;
      }
      *reply = std::move(frame);
      return CallStatus::kOk;
    }
    if (status == FrameDecoder::Status::kMalformed) {
      Close();
      return CallStatus::kBadReply;
    }
    const int64_t remaining = deadline - SteadyNowMs();
    if (remaining <= 0) {
      // The reply may still arrive later and would desynchronize the next
      // request; a timed-out connection is only safe to abandon.
      Close();
      return CallStatus::kTimeout;
    }
    size_t received = 0;
    const IoStatus io =
        socket_.RecvSome(chunk.data(), chunk.size(),
                         static_cast<int>(remaining), &received);
    if (io == IoStatus::kOk) {
      decoder_->Feed(chunk.data(), received);
    } else if (io != IoStatus::kTimeout) {
      Close();
      return CallStatus::kDisconnected;
    }
  }
}

bool IngestClient::Hello(int num_value_fields, int num_classes,
                         std::string* error) {
  HelloRequest hello;
  hello.num_value_fields = num_value_fields;
  hello.num_classes = num_classes;
  Frame reply;
  const CallStatus status = Call(FrameType::kHello, EncodeHello(hello),
                                 &reply);
  if (status != CallStatus::kOk) {
    *error = std::string("hello failed: transport ") +
             (status == CallStatus::kTimeout ? "timeout" : "error");
    return false;
  }
  if (reply.type == FrameType::kHelloAck) return true;
  ErrorFrame frame;
  if (reply.type == FrameType::kError && DecodeError(reply.payload, &frame)) {
    *error = std::string("hello rejected: ") + ErrorCodeName(frame.code) +
             ": " + frame.message;
  } else {
    *error = "hello rejected: unexpected reply";
  }
  Close();
  return false;
}

bool RunLoadgen(const LoadgenConfig& config, const std::vector<Item>& items,
                LoadgenReport* report, std::string* error) {
  *report = LoadgenReport();
  const int connections = std::max(1, config.connections);
  std::vector<std::vector<Item>> split(connections);
  for (size_t i = 0; i < items.size(); ++i) {
    split[i % connections].push_back(items[i]);
  }
  std::vector<WorkerResult> results(connections);
  Rng seeder(config.seed);
  std::vector<uint64_t> seeds(connections);
  for (int c = 0; c < connections; ++c) seeds[c] = seeder.NextUint64();

  const int64_t start_ms = SteadyNowMs();
  std::vector<std::thread> workers;
  workers.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back(RunWorker, std::cref(config), std::cref(split[c]),
                         seeds[c], &results[c]);
  }
  for (auto& worker : workers) worker.join();
  report->elapsed_ms = std::max<int64_t>(1, SteadyNowMs() - start_ms);

  LatencyRecorder merged;
  bool any_connected = false;
  std::string first_error;
  for (const WorkerResult& result : results) {
    report->batches_sent += result.batches_sent;
    report->batches_failed += result.batches_failed;
    report->items_acked += result.items_acked;
    report->items_shed += result.items_shed;
    report->retries += result.retries;
    report->overloaded_replies += result.overloaded_replies;
    report->reconnects += result.reconnects;
    any_connected = any_connected || result.connected_once;
    if (first_error.empty()) first_error = result.first_error;
    merged.Merge(result.latency);
  }
  report->latency = merged.Snapshot();
  report->batches_per_sec =
      1000.0 * static_cast<double>(report->batches_sent) / report->elapsed_ms;
  report->items_per_sec =
      1000.0 * static_cast<double>(report->items_acked) / report->elapsed_ms;
  if (!any_connected && !items.empty()) {
    *error = first_error.empty() ? "no connection could be established"
                                 : first_error;
    return false;
  }
  return true;
}

}  // namespace net
}  // namespace kvec
