// Fault-tolerant TCP front end for the sharded stream server.
//
// The serving core (core/sharded_stream_server.h) assumes a well-behaved
// in-process caller. A network peer offers no such guarantee: it can send
// garbage, stall mid-frame, vanish mid-batch, or push faster than the
// shards drain. This server turns each of those into a bounded, observable
// outcome instead of a hung thread or unbounded buffer:
//
//   * One handler thread per connection, capped at `max_connections`;
//     excess connections get an OVERLOADED error frame and are closed
//     before they can consume a thread.
//   * All parsing goes through FrameDecoder (net/frame.h): magic, version
//     and the length prefix are validated before any payload buffering,
//     and a malformed stream earns one MALFORMED error frame and a close —
//     a desynchronized byte stream is never resynchronized by guessing.
//   * A connection must present a complete frame every `idle_timeout_ms`
//     or it is evicted (the deadline resets per *frame*, not per byte, so
//     a slow-loris peer dripping single bytes still trips it). Writes are
//     bounded by `io_timeout_ms`.
//   * Ingest overload surfaces per batch: Submit()'s shed count becomes an
//     OVERLOADED error frame carrying accepted/shed, telling the client to
//     back off — composing with the shard queues' overload policies rather
//     than hiding them.
//   * Shutdown() is a drain, not an abort: stop accepting, half-close
//     every connection (ShutdownRead — the handler sees EOF, finishes the
//     requests already buffered, flushes responses, exits), join. The
//     caller then drains the shards and checkpoints; accepted work is
//     never dropped (the PR-6 overload invariant extends to the wire).
//
// Fault points on the socket layer (`net.accept`, `net.read_frame`,
// `net.write_frame`, `net.deadline`) let tests force every one of those
// paths deterministically; see docs/SERVING.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_stream_server.h"
#include "net/frame.h"
#include "net/socket.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kvec {
namespace net {

struct TcpIngestServerConfig {
  std::string host = "127.0.0.1";
  // 0 = let the kernel pick an ephemeral port; read it back via port().
  uint16_t port = 0;
  int backlog = 64;
  // Hard cap on concurrent connections (== handler threads).
  int max_connections = 64;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // A connection that completes no frame for this long is evicted.
  int idle_timeout_ms = 30000;
  // Deadline for writing one response frame (and for one read slice).
  int io_timeout_ms = 5000;
  // The dataset shape hello frames must match (the served model's shape).
  int num_value_fields = 0;
  int num_classes = 0;
};

// Monotonic counters; snapshot via stats(). All maintained with relaxed
// atomics — they are diagnostics, not synchronization.
struct TcpIngestServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_rejected = 0;  // over max_connections
  int64_t connections_evicted_idle = 0;
  int64_t frames_received = 0;
  int64_t frames_malformed = 0;
  int64_t batches_ingested = 0;
  int64_t items_accepted = 0;
  int64_t items_shed = 0;   // shed at ingest, reported as OVERLOADED
  int64_t errors_sent = 0;  // error frames successfully written
};

class TcpIngestServer {
 public:
  // `server` must be trained/configured and outlive this object. Nothing
  // starts until Start().
  TcpIngestServer(ShardedStreamServer* server,
                  const TcpIngestServerConfig& config);
  ~TcpIngestServer();

  TcpIngestServer(const TcpIngestServer&) = delete;
  TcpIngestServer& operator=(const TcpIngestServer&) = delete;

  // Binds and starts the accept thread. False + `*error` on bind failure.
  bool Start(std::string* error);

  // The bound port (the kernel's pick when config.port was 0).
  uint16_t port() const { return listener_.port(); }

  // Graceful drain: stop accepting, half-close every live connection,
  // join all handler threads. Buffered requests are still answered; new
  // ones get EOF. Idempotent; also runs from the destructor. The caller
  // remains responsible for draining the shard queues afterwards.
  void Shutdown();

  bool running() const { return started_ && !stopping_.load(); }
  TcpIngestServerStats stats() const;
  int active_connections() const;

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    // Set by the handler as its last act; lets the accept loop reap
    // finished connections without joining live ones.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  // Dispatches one decoded frame; returns false when the connection must
  // close (malformed payload or a failed response write).
  bool HandleFrame(Connection* conn, const Frame& frame, bool* hello_done);
  // Encodes and writes `frame` under io_timeout_ms.
  bool WriteFrame(Connection* conn, const Frame& frame);
  bool WriteError(Connection* conn, uint64_t request_id, ErrorCode code,
                  const std::string& message, int64_t accepted = 0,
                  int64_t shed = 0);
  // Joins and erases connections whose handler has finished.
  void ReapFinished();

  ShardedStreamServer* const server_;
  const TcpIngestServerConfig config_;
  ListenSocket listener_;
  std::thread accept_thread_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      KVEC_GUARDED_BY(mutex_);

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> connections_evicted_idle_{0};
  std::atomic<int64_t> frames_received_{0};
  std::atomic<int64_t> frames_malformed_{0};
  std::atomic<int64_t> batches_ingested_{0};
  std::atomic<int64_t> items_accepted_{0};
  std::atomic<int64_t> items_shed_{0};
  std::atomic<int64_t> errors_sent_{0};
};

}  // namespace net
}  // namespace kvec
