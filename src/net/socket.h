// Deadline-bounded POSIX TCP sockets for the network front end.
//
// This is the ONLY file in the repository allowed to touch the raw socket
// syscalls (socket/bind/listen/accept/connect/send/recv/...); the project
// lint's raw-syscall rule rejects them anywhere else, so every byte that
// crosses the process boundary goes through the deadline and
// fault-injection discipline here:
//
//   * Every blocking operation takes an explicit timeout and is
//     implemented as poll()+syscall, so a slow or dead peer can stall a
//     connection for at most its deadline, never forever.
//   * SendAll loops until the whole buffer is written (short writes are
//     normal under pressure) under one overall deadline; SIGPIPE is
//     suppressed per call (MSG_NOSIGNAL), so a vanished peer is an error
//     return, never a process kill.
//   * The fault points `net.read_frame`, `net.write_frame` and
//     `net.deadline` fire inside RecvSome/SendAll/deadline checks, letting
//     tests force torn reads, failed writes, and instant deadline expiry
//     deterministically (util/fault_injection.h).
//
// Sockets are movable RAII owners of their fd. Shutdown*() wakes a peer
// thread blocked in poll on the same fd without closing it — the owner
// thread remains the only closer, which is what makes cross-thread
// connection eviction race-free.
#pragma once

#include <cstdint>
#include <string>

namespace kvec {
namespace net {

enum class IoStatus {
  kOk,
  kTimeout,  // deadline expired before the operation completed
  kClosed,   // orderly peer shutdown (EOF) or operation on a closed socket
  kError,    // errno-level failure (connection reset, refused, ...)
};

const char* IoStatusName(IoStatus status);

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Half/full shutdown without closing the fd: wakes a thread blocked in
  // poll/recv on this socket (it sees EOF). Safe to call from another
  // thread while the owner is mid-read; only the owner ever closes.
  void ShutdownRead();
  void ShutdownBoth();
  void Close();

  // Writes all `size` bytes within `timeout_ms`. Fires `net.write_frame`.
  IoStatus SendAll(const char* data, size_t size, int timeout_ms);

  // Reads 1..size bytes into `data` within `timeout_ms`; `*received` gets
  // the count (0 with kClosed on EOF). Fires `net.read_frame`.
  IoStatus RecvSome(char* data, size_t size, int timeout_ms,
                    size_t* received);

  // Connects to host:port within `timeout_ms`. `host` is a numeric IPv4
  // address or "localhost". Invalid socket + `*error` on failure.
  static Socket Connect(const std::string& host, uint16_t port,
                        int timeout_ms, std::string* error);

 private:
  int fd_ = -1;
};

class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  bool valid() const { return fd_ >= 0; }
  // The actually bound port — with port 0 the kernel picks an ephemeral
  // one, which is what keeps loopback tests and CI from colliding.
  uint16_t port() const { return port_; }

  // Binds host:port (SO_REUSEADDR) and listens. Invalid + `*error` on
  // failure.
  static ListenSocket Bind(const std::string& host, uint16_t port,
                           int backlog, std::string* error);

  // Waits up to `timeout_ms` for one connection. Returns an invalid
  // socket on timeout or error (`*timed_out` disambiguates). Fires
  // `net.accept`; an injected fault drops the pending connection.
  Socket Accept(int timeout_ms, bool* timed_out);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// True when `deadline_ms` (a steady-clock epoch in ms, as returned by
// SteadyNowMs) has passed. Fires `net.deadline`: an armed hook forces
// instant expiry, which is how tests drive idle-timeout eviction without
// waiting out real clocks.
bool DeadlineExpired(int64_t deadline_ms);

// Milliseconds on the monotonic clock (never wall time; lint bans
// wall-clock seeds and this module follows suit for all deadlines).
int64_t SteadyNowMs();

}  // namespace net
}  // namespace kvec
