#include "net/frame.h"

#include <cstring>

#include "util/serialize.h"

namespace kvec {
namespace net {
namespace {

// Bound on one item's value-field arity inside a decoded batch. Real specs
// have a handful of value fields; a frame claiming more is hostile.
constexpr int64_t kMaxValueFields = 4096;

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
bool ConsumeRaw(const std::string& buffer, size_t* cursor, T* out) {
  if (buffer.size() - *cursor < sizeof(T)) return false;
  std::memcpy(out, buffer.data() + *cursor, sizeof(T));
  *cursor += sizeof(T);
  return true;
}

// Shared epilogue of every payload decoder: the reader must have consumed
// the payload exactly — trailing bytes are corruption, not padding.
bool Finish(const BinaryReader& reader) {
  return reader.ok() && reader.AtEnd();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kIngestBatch:
      return "ingest_batch";
    case FrameType::kStatsQuery:
      return "stats_query";
    case FrameType::kFlush:
      return "flush";
    case FrameType::kHelloAck:
      return "hello_ack";
    case FrameType::kIngestAck:
      return "ingest_ack";
    case FrameType::kStatsReply:
      return "stats_reply";
    case FrameType::kFlushAck:
      return "flush_ack";
    case FrameType::kError:
      return "error";
  }
  return "unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed:
      return "MALFORMED";
    case ErrorCode::kOverloaded:
      return "OVERLOADED";
    case ErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case ErrorCode::kUnsupported:
      return "UNSUPPORTED";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  const uint32_t magic = kFrameMagic;
  const uint16_t version = kFrameProtocolVersion;
  const uint16_t type = static_cast<uint16_t>(frame.type);
  const uint64_t request_id = frame.request_id;
  const uint32_t payload_len = static_cast<uint32_t>(frame.payload.size());
  AppendRaw(&out, &magic, sizeof(magic));
  AppendRaw(&out, &version, sizeof(version));
  AppendRaw(&out, &type, sizeof(type));
  AppendRaw(&out, &request_id, sizeof(request_id));
  AppendRaw(&out, &payload_len, sizeof(payload_len));
  out.append(frame.payload);
  return out;
}

FrameDecoder::FrameDecoder(uint32_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(const char* data, size_t size) {
  if (malformed_ || size == 0) return;
  // Compact once the consumed prefix dominates, so the buffer stays
  // bounded by (one frame + one read chunk) instead of the whole stream.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Status FrameDecoder::Next(Frame* out, std::string* error) {
  if (malformed_) {
    if (error != nullptr) *error = malformed_reason_;
    return Status::kMalformed;
  }
  if (buffered_bytes() < kFrameHeaderBytes) return Status::kNeedMore;

  // Parse and validate the fixed header BEFORE touching the payload: a
  // hostile length prefix must be rejected here, while the only bytes
  // buffered are the 20 the peer actually sent.
  size_t cursor = consumed_;
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t type = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  ConsumeRaw(buffer_, &cursor, &magic);
  ConsumeRaw(buffer_, &cursor, &version);
  ConsumeRaw(buffer_, &cursor, &type);
  ConsumeRaw(buffer_, &cursor, &request_id);
  ConsumeRaw(buffer_, &cursor, &payload_len);
  if (magic != kFrameMagic) {
    malformed_ = true;
    malformed_reason_ = "bad frame magic";
  } else if (version != kFrameProtocolVersion) {
    malformed_ = true;
    malformed_reason_ =
        "unsupported protocol version " + std::to_string(version);
  } else if (payload_len > max_frame_bytes_) {
    malformed_ = true;
    malformed_reason_ = "frame payload of " + std::to_string(payload_len) +
                        " bytes exceeds the " +
                        std::to_string(max_frame_bytes_) + "-byte cap";
  }
  if (malformed_) {
    if (error != nullptr) *error = malformed_reason_;
    return Status::kMalformed;
  }

  if (buffered_bytes() - kFrameHeaderBytes < payload_len) {
    return Status::kNeedMore;  // torn frame: wait for the rest
  }
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  out->payload.assign(buffer_, cursor, payload_len);
  consumed_ = cursor + payload_len;
  return Status::kFrame;
}

// ---- Payload codecs ------------------------------------------------------

std::string EncodeHello(const HelloRequest& hello) {
  BinaryWriter writer;
  writer.WriteInt32(hello.num_value_fields);
  writer.WriteInt32(hello.num_classes);
  return writer.buffer();
}

bool DecodeHello(const std::string& payload, HelloRequest* out) {
  BinaryReader reader(payload);
  out->num_value_fields = reader.ReadInt32();
  out->num_classes = reader.ReadInt32();
  return Finish(reader);
}

std::string EncodeItems(const std::vector<Item>& items) {
  BinaryWriter writer;
  writer.WriteInt32(static_cast<int32_t>(items.size()));
  for (const Item& item : items) {
    writer.WriteInt32(item.key);
    writer.WriteIntVector(item.value);
    writer.WriteDouble(item.time);
  }
  return writer.buffer();
}

bool DecodeItems(const std::string& payload, std::vector<Item>* out) {
  BinaryReader reader(payload);
  const int32_t count = reader.ReadInt32();
  if (!reader.ok() || count < 0) return false;
  // Every item is at least 3 tagged values (> 24 bytes); a count the
  // remaining bytes cannot possibly hold fails before the reserve.
  if (static_cast<uint64_t>(count) > reader.remaining() / 24) return false;
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (int32_t i = 0; i < count; ++i) {
    Item item;
    item.key = reader.ReadInt32();
    item.value = reader.ReadIntVector();
    item.time = reader.ReadDouble();
    if (!reader.ok() ||
        static_cast<int64_t>(item.value.size()) > kMaxValueFields) {
      return false;
    }
    out->push_back(std::move(item));
  }
  return Finish(reader);
}

std::string EncodeIngestAck(const IngestAck& ack) {
  BinaryWriter writer;
  writer.WriteInt64(ack.accepted);
  writer.WriteInt64(ack.shed);
  return writer.buffer();
}

bool DecodeIngestAck(const std::string& payload, IngestAck* out) {
  BinaryReader reader(payload);
  out->accepted = reader.ReadInt64();
  out->shed = reader.ReadInt64();
  return Finish(reader);
}

std::string EncodeStatsReply(const StatsReply& stats) {
  BinaryWriter writer;
  writer.WriteInt64(stats.items_submitted);
  writer.WriteInt64(stats.items_processed);
  writer.WriteInt64(stats.items_shed);
  writer.WriteInt64(stats.sequences_classified);
  writer.WriteInt64(stats.open_keys);
  return writer.buffer();
}

bool DecodeStatsReply(const std::string& payload, StatsReply* out) {
  BinaryReader reader(payload);
  out->items_submitted = reader.ReadInt64();
  out->items_processed = reader.ReadInt64();
  out->items_shed = reader.ReadInt64();
  out->sequences_classified = reader.ReadInt64();
  out->open_keys = reader.ReadInt64();
  return Finish(reader);
}

std::string EncodeFlushAck(const FlushAck& ack) {
  BinaryWriter writer;
  writer.WriteInt64(ack.events);
  return writer.buffer();
}

bool DecodeFlushAck(const std::string& payload, FlushAck* out) {
  BinaryReader reader(payload);
  out->events = reader.ReadInt64();
  return Finish(reader);
}

std::string EncodeError(const ErrorFrame& error) {
  BinaryWriter writer;
  writer.WriteInt32(static_cast<int32_t>(error.code));
  writer.WriteString(error.message);
  writer.WriteInt64(error.accepted);
  writer.WriteInt64(error.shed);
  return writer.buffer();
}

bool DecodeError(const std::string& payload, ErrorFrame* out) {
  BinaryReader reader(payload);
  out->code = static_cast<ErrorCode>(reader.ReadInt32());
  out->message = reader.ReadString();
  out->accepted = reader.ReadInt64();
  out->shed = reader.ReadInt64();
  return Finish(reader);
}

}  // namespace net
}  // namespace kvec
