// Retry/backoff load generator and the client side of the ingest protocol.
//
// IngestClient is one synchronous connection: connect, hello, then
// request/response round trips under a per-request deadline. It does NOT
// retry — it reports exactly what happened (ok / timeout / disconnect /
// bad reply) so the retry policy lives in one place above it.
//
// RunLoadgen drives N IngestClients from worker threads, replaying a
// dataset in microbatches at an optional fixed rate, with the full
// fault-tolerance loop a production client needs:
//
//   * per-request timeout (a stuck server costs one deadline, not a hang);
//   * capped exponential backoff with jitter between retries — OVERLOADED
//     responses back off on the same connection, timeouts and disconnects
//     reconnect (and re-hello) first;
//   * a bounded retry budget per batch; exhausting it counts the batch as
//     failed rather than retrying forever;
//   * per-connection HdrHistogram latency recording (one Record per
//     *completed* batch, covering every retry and backoff it needed — the
//     tail percentiles show what overload actually costs end to end),
//     merged after the workers join.
//
// Everything is deterministic given LoadgenConfig::seed except the
// latencies themselves (jitter streams are split per connection).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/types.h"
#include "net/frame.h"
#include "net/latency_recorder.h"
#include "net/socket.h"

namespace kvec {
namespace net {

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  int request_timeout_ms = 2000;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class IngestClient {
 public:
  enum class CallStatus {
    kOk,            // *reply holds the server's response frame
    kTimeout,       // request deadline expired
    kDisconnected,  // connect failed, send failed, or peer closed
    kBadReply,      // reply unframeable or with the wrong request id
  };

  explicit IngestClient(const ClientConfig& config);

  bool Connect(std::string* error);
  bool connected() const { return socket_.valid(); }
  void Close();

  // One request/response round trip with a fresh request id. On kOk,
  // *reply is the response (possibly a kError frame — protocol errors are
  // the caller's to interpret, only transport failures are CallStatus).
  CallStatus Call(FrameType type, const std::string& payload, Frame* reply);

  // Hello round trip; false (with *error) unless the server acks.
  bool Hello(int num_value_fields, int num_classes, std::string* error);

 private:
  const ClientConfig config_;
  Socket socket_;
  std::optional<FrameDecoder> decoder_;
  uint64_t next_request_id_ = 1;
};

struct LoadgenConfig {
  ClientConfig client;
  int connections = 1;
  int batch_size = 64;
  // Microbatches per second per connection; 0 = as fast as acks allow.
  double rate = 0.0;
  // Retry budget per batch (attempts = 1 + retries).
  int retries = 5;
  int backoff_ms = 10;       // initial backoff
  int backoff_cap_ms = 1000; // exponential growth stops here
  uint64_t seed = 1;         // jitter streams
  // Dataset shape announced in the hello frame.
  int num_value_fields = 0;
  int num_classes = 0;
};

struct LoadgenReport {
  int64_t batches_sent = 0;      // completed (acked) batches
  int64_t batches_failed = 0;    // retry budget exhausted
  int64_t items_acked = 0;
  int64_t items_shed = 0;        // reported by OVERLOADED responses
  int64_t retries = 0;           // extra attempts beyond the first
  int64_t overloaded_replies = 0;
  int64_t reconnects = 0;        // successful reconnections after a drop
  int64_t elapsed_ms = 0;
  double batches_per_sec = 0.0;
  double items_per_sec = 0.0;
  LatencySnapshot latency;       // per completed batch, end to end
};

// Splits `items` round-robin across `config.connections` workers and
// replays them. Returns false (with *error) only when no connection could
// be established at all; partial failure is reported in the counters.
bool RunLoadgen(const LoadgenConfig& config, const std::vector<Item>& items,
                LoadgenReport* report, std::string* error);

}  // namespace net
}  // namespace kvec
