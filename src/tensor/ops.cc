#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace kvec {
namespace ops {
namespace {

using internal::MakeOpOutput;

// True when the op should record a tape node: some input needs gradients and
// the thread is not inside an InferenceMode guard.
bool AnyRequiresGrad(std::initializer_list<const Tensor*> tensors) {
  if (InferenceMode::Enabled()) return false;
  for (const Tensor* t : tensors) {
    if (t->requires_grad()) return true;
  }
  return false;
}

// Row-parallel helper for softmax/layernorm-shaped loops: fn(r0, r1) must
// process rows [r0, r1) independently. Small matrices run inline with no
// dispatch overhead (ParallelForThreshold is templated on fn).
template <typename Fn>
void ForEachRowBlock(int rows, int cols, Fn&& fn) {
  const int grain = std::max(1, (1 << 13) / std::max(1, cols));
  ParallelForThreshold(static_cast<long long>(rows) * cols,
                       /*work_threshold=*/1 << 14, rows, grain,
                       std::forward<Fn>(fn));
}

// Span-parallel helper for large elementwise loops.
template <typename Fn>
void ForEachSpan(size_t size, Fn&& fn) {
  ParallelForThreshold(static_cast<long long>(size),
                       /*work_threshold=*/1 << 15, static_cast<int>(size),
                       /*grain=*/1 << 14, std::forward<Fn>(fn));
}

// Row-wise softmax of `scores` (+ optional additive constant mask) shared by
// Softmax / MaskedSoftmax / LogSoftmax forward passes.
void SoftmaxForward(const std::vector<float>& scores, const float* mask,
                    int rows, int cols, std::vector<float>& out) {
  const float* in = scores.data();
  float* out_base = out.data();
  ForEachRowBlock(rows, cols, [=](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const float* in_row = in + static_cast<size_t>(r) * cols;
      const float* mask_row =
          mask ? mask + static_cast<size_t>(r) * cols : nullptr;
      float* out_row = out_base + static_cast<size_t>(r) * cols;
      float max_value = -std::numeric_limits<float>::infinity();
      for (int c = 0; c < cols; ++c) {
        float v = in_row[c] + (mask_row ? mask_row[c] : 0.0f);
        out_row[c] = v;
        max_value = std::max(max_value, v);
      }
      float total = 0.0f;
      for (int c = 0; c < cols; ++c) {
        out_row[c] = std::exp(out_row[c] - max_value);
        total += out_row[c];
      }
      KVEC_CHECK_GT(total, 0.0f) << "softmax over a fully masked row";
      const float inv_total = 1.0f / total;
      for (int c = 0; c < cols; ++c) out_row[c] *= inv_total;
    }
  });
}

// dX for a softmax output Y with upstream dY: dx = y .* (dy - sum(dy .* y)).
void SoftmaxBackwardRow(const float* y, const float* dy, int cols, float* dx) {
  float dot = 0.0f;
  for (int c = 0; c < cols; ++c) dot += dy[c] * y[c];
  for (int c = 0; c < cols; ++c) dx[c] += y[c] * (dy[c] - dot);
}

// Whole-matrix softmax backward shared by Softmax / MaskedSoftmax.
void SoftmaxBackwardAll(TensorImpl* ia, TensorImpl* io, int m, int n) {
  ia->EnsureGrad();
  const float* y = io->data.data();
  const float* dy = io->grad.data();
  float* dx = ia->grad.data();
  ForEachRowBlock(m, n, [=](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      SoftmaxBackwardRow(y + static_cast<size_t>(r) * n,
                         dy + static_cast<size_t>(r) * n, n,
                         dx + static_cast<size_t>(r) * n);
    }
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  const int m = a.rows(), k = a.cols(), n = b.cols();
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out = MakeOpOutput(m, n, {a.impl(), b.impl()}, needs_grad);
  kernels::GemmNN(a.data().data(), b.data().data(), out.data().data(), m, k, n,
                  /*accumulate=*/false);
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, k, n]() {
      const float* dy = io->grad.data();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        // dA += dY B^T
        kernels::GemmNT(dy, ib->data.data(), ia->grad.data(), m, n, k,
                        /*accumulate=*/true);
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        // dB += A^T dY
        kernels::GemmTN(ia->data.data(), dy, ib->grad.data(), k, m, n,
                        /*accumulate=*/true);
      }
    };
  }
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransposeB shape mismatch";
  const int m = a.rows(), k = a.cols(), n = b.rows();
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out = MakeOpOutput(m, n, {a.impl(), b.impl()}, needs_grad);
  kernels::GemmNT(a.data().data(), b.data().data(), out.data().data(), m, k, n,
                  /*accumulate=*/false);
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, k, n]() {
      const float* dy = io->grad.data();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        // dA += dY B
        kernels::GemmNN(dy, ib->data.data(), ia->grad.data(), m, n, k,
                        /*accumulate=*/true);
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        // dB += dY^T A
        kernels::GemmTN(dy, ia->data.data(), ib->grad.data(), n, m, k,
                        /*accumulate=*/true);
      }
    };
  }
  return out;
}

Tensor LinearForward(const Tensor& x, const Tensor& weight,
                     const Tensor& bias) {
  KVEC_CHECK_EQ(x.cols(), weight.rows()) << "LinearForward shape mismatch";
  const int m = x.rows(), k = x.cols(), n = weight.cols();
  const bool has_bias = bias.defined();
  if (has_bias) {
    KVEC_CHECK_EQ(bias.rows(), 1);
    KVEC_CHECK_EQ(bias.cols(), n);
  }
  bool needs_grad = has_bias ? AnyRequiresGrad({&x, &weight, &bias})
                             : AnyRequiresGrad({&x, &weight});
  std::vector<std::shared_ptr<TensorImpl>> parents = {x.impl(), weight.impl()};
  if (has_bias) parents.push_back(bias.impl());
  Tensor out = MakeOpOutput(m, n, std::move(parents), needs_grad);
  kernels::GemmNN(x.data().data(), weight.data().data(), out.data().data(), m,
                  k, n, /*accumulate=*/false);
  if (has_bias) {
    const float* pb = bias.data().data();
    float* po = out.data().data();
    for (int i = 0; i < m; ++i) {
      float* o_row = po + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) o_row[j] += pb[j];
    }
  }
  if (needs_grad) {
    auto ix = x.impl(), iw = weight.impl();
    auto ib = has_bias ? bias.impl() : nullptr;
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ix, iw, ib, io, m, k, n]() {
      const float* dy = io->grad.data();
      if (ix->requires_grad) {
        ix->EnsureGrad();
        // dX += dY W^T
        kernels::GemmNT(dy, iw->data.data(), ix->grad.data(), m, n, k,
                        /*accumulate=*/true);
      }
      if (iw->requires_grad) {
        iw->EnsureGrad();
        // dW += X^T dY
        kernels::GemmTN(ix->data.data(), dy, iw->grad.data(), k, m, n,
                        /*accumulate=*/true);
      }
      if (ib != nullptr && ib->requires_grad) {
        ib->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          const float* dy_row = dy + static_cast<size_t>(i) * n;
          for (int j = 0; j < n; ++j) ib->grad[j] += dy_row[j];
        }
      }
    };
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(n, m, {a.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.Set(j, i, a.At(i, j));
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      ia->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          ia->grad[static_cast<size_t>(i) * n + j] +=
              io->grad[static_cast<size_t>(j) * m + i];
        }
      }
    };
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ib->grad[i] += io->grad[i];
        }
      }
    };
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] - b.data()[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ib->grad[i] -= io->grad[i];
        }
      }
    };
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i] * ib->data[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ib->grad[i] += io->grad[i] * ia->data[i];
        }
      }
    };
  }
  return out;
}

Tensor AddRow(const Tensor& a, const Tensor& bias) {
  KVEC_CHECK_EQ(bias.rows(), 1);
  KVEC_CHECK_EQ(a.cols(), bias.cols());
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a, &bias});
  Tensor out = MakeOpOutput(m, n, {a.impl(), bias.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out.data()[static_cast<size_t>(i) * n + j] =
          a.data()[static_cast<size_t>(i) * n + j] + bias.data()[j];
    }
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = bias.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, n]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            ib->grad[j] += io->grad[static_cast<size_t>(i) * n + j];
          }
        }
      }
    };
  }
  return out;
}

Tensor Affine(const Tensor& a, float scale, float shift) {
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(a.rows(), a.cols(), {a.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = scale * a.data()[i] + shift;
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, scale]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < io->grad.size(); ++i) {
        ia->grad[i] += scale * io->grad[i];
      }
    };
  }
  return out;
}

Tensor AddN(const std::vector<Tensor>& tensors) {
  KVEC_CHECK(!tensors.empty());
  const int m = tensors[0].rows(), n = tensors[0].cols();
  bool needs_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    KVEC_CHECK_EQ(t.rows(), m);
    KVEC_CHECK_EQ(t.cols(), n);
    needs_grad = needs_grad || t.requires_grad();
    parents.push_back(t.impl());
  }
  // MakeOpOutput masks needs_grad under InferenceMode; out.requires_grad()
  // is the single authority on whether to attach a backward hook.
  Tensor out = MakeOpOutput(m, n, parents, needs_grad);
  std::copy(tensors[0].data().begin(), tensors[0].data().end(),
            out.data().begin());  // initialises the uninit op output
  for (size_t t = 1; t < tensors.size(); ++t) {
    const float* pt = tensors[t].data().data();
    float* po = out.data().data();
    for (int i = 0; i < tensors[t].size(); ++i) po[i] += pt[i];
  }
  if (out.requires_grad()) {
    TensorImpl* io = out.impl().get();
    auto impls = out.impl()->parents;
    out.impl()->backward_fn = [io, impls]() {
      for (const auto& parent : impls) {
        if (!parent->requires_grad) continue;
        parent->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          parent->grad[i] += io->grad[i];
        }
      }
    };
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  const int m = a.rows(), na = a.cols(), nb = b.cols();
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out = MakeOpOutput(m, na + nb, {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < na; ++j) out.Set(i, j, a.At(i, j));
    for (int j = 0; j < nb; ++j) out.Set(i, na + j, b.At(i, j));
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, na, nb]() {
      const int n = na + nb;
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < na; ++j) {
            ia->grad[static_cast<size_t>(i) * na + j] +=
                io->grad[static_cast<size_t>(i) * n + j];
          }
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < nb; ++j) {
            ib->grad[static_cast<size_t>(i) * nb + j] +=
                io->grad[static_cast<size_t>(i) * n + na + j];
          }
        }
      }
    };
  }
  return out;
}

Tensor ConcatColsN(const std::vector<Tensor>& parts) {
  KVEC_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  const int m = parts[0].rows();
  int total_cols = 0;
  bool needs_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(parts.size());
  for (const Tensor& part : parts) {
    KVEC_CHECK_EQ(part.rows(), m);
    total_cols += part.cols();
    needs_grad = needs_grad || part.requires_grad();
    parents.push_back(part.impl());
  }
  Tensor out = MakeOpOutput(m, total_cols, parents, needs_grad);
  {
    float* po = out.data().data();
    int offset = 0;
    for (const Tensor& part : parts) {
      const int w = part.cols();
      const float* pp = part.data().data();
      for (int i = 0; i < m; ++i) {
        std::copy(pp + static_cast<size_t>(i) * w,
                  pp + static_cast<size_t>(i + 1) * w,
                  po + static_cast<size_t>(i) * total_cols + offset);
      }
      offset += w;
    }
  }
  if (out.requires_grad()) {
    TensorImpl* io = out.impl().get();
    auto impls = out.impl()->parents;
    out.impl()->backward_fn = [io, impls, m, total_cols]() {
      int offset = 0;
      for (const auto& parent : impls) {
        const int w = parent->cols;
        if (parent->requires_grad) {
          parent->EnsureGrad();
          for (int i = 0; i < m; ++i) {
            const float* dy =
                io->grad.data() + static_cast<size_t>(i) * total_cols + offset;
            float* dp = parent->grad.data() + static_cast<size_t>(i) * w;
            for (int j = 0; j < w; ++j) dp[j] += dy[j];
          }
        }
        offset += w;
      }
    };
  }
  return out;
}

Tensor FusedMulAdd(const Tensor& a, const Tensor& b, const Tensor& c,
                   const Tensor& d) {
  const int m = a.rows(), n = a.cols();
  for (const Tensor* t : {&b, &c, &d}) {
    KVEC_CHECK_EQ(t->rows(), m);
    KVEC_CHECK_EQ(t->cols(), n);
  }
  bool needs_grad = AnyRequiresGrad({&a, &b, &c, &d});
  Tensor out = MakeOpOutput(
      m, n, {a.impl(), b.impl(), c.impl(), d.impl()}, needs_grad);
  {
    const float* pa = a.data().data();
    const float* pb = b.data().data();
    const float* pc = c.data().data();
    const float* pd = d.data().data();
    float* po = out.data().data();
    for (int i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i] + pc[i] * pd[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl(), ic = c.impl(), id = d.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, ic, id, io]() {
      const float* dy = io->grad.data();
      const size_t size = io->grad.size();
      auto accumulate = [&](TensorImpl* target, TensorImpl* factor) {
        if (!target->requires_grad) return;
        target->EnsureGrad();
        for (size_t i = 0; i < size; ++i) {
          target->grad[i] += dy[i] * factor->data[i];
        }
      };
      accumulate(ia.get(), ib.get());
      accumulate(ib.get(), ia.get());
      accumulate(ic.get(), id.get());
      accumulate(id.get(), ic.get());
    };
  }
  return out;
}

Tensor MulTanh(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  // tanh(b) is cached for the backward pass only when one is coming;
  // inference computes it in-place with no side allocation.
  std::shared_ptr<std::vector<float>> tanh_b;
  if (needs_grad) tanh_b = std::make_shared<std::vector<float>>(a.size());
  {
    const float* pa = a.data().data();
    const float* pb = b.data().data();
    float* po = out.data().data();
    for (int i = 0; i < a.size(); ++i) {
      const float t = std::tanh(pb[i]);
      if (tanh_b) (*tanh_b)[i] = t;
      po[i] = pa[i] * t;
    }
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, tanh_b]() {
      const float* dy = io->grad.data();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += dy[i] * (*tanh_b)[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          const float t = (*tanh_b)[i];
          ib->grad[i] += dy[i] * ia->data[i] * (1.0f - t * t);
        }
      }
    };
  }
  return out;
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  KVEC_CHECK(!rows.empty());
  const int n = rows[0].cols();
  bool needs_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(rows.size());
  for (const Tensor& row : rows) {
    KVEC_CHECK_EQ(row.rows(), 1);
    KVEC_CHECK_EQ(row.cols(), n);
    needs_grad = needs_grad || row.requires_grad();
    parents.push_back(row.impl());
  }
  const int m = static_cast<int>(rows.size());
  Tensor out = MakeOpOutput(m, n, parents, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.Set(i, j, rows[i].At(0, j));
  }
  if (out.requires_grad()) {
    TensorImpl* io = out.impl().get();
    auto impls = out.impl()->parents;
    out.impl()->backward_fn = [io, impls, n]() {
      for (size_t i = 0; i < impls.size(); ++i) {
        if (!impls[i]->requires_grad) continue;
        impls[i]->EnsureGrad();
        for (int j = 0; j < n; ++j) {
          impls[i]->grad[j] += io->grad[i * n + j];
        }
      }
    };
  }
  return out;
}

Tensor SliceRow(const Tensor& a, int row) { return SliceRows(a, row, row + 1); }

Tensor SliceRows(const Tensor& a, int begin, int end) {
  KVEC_CHECK_GE(begin, 0);
  KVEC_CHECK_LT(begin, end);
  KVEC_CHECK_LE(end, a.rows());
  const int n = a.cols(), m = end - begin;
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  std::copy(a.data().begin() + static_cast<size_t>(begin) * n,
            a.data().begin() + static_cast<size_t>(end) * n,
            out.data().begin());
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, begin, m, n]() {
      ia->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          ia->grad[static_cast<size_t>(begin + i) * n + j] +=
              io->grad[static_cast<size_t>(i) * n + j];
        }
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int begin, int end) {
  KVEC_CHECK_GE(begin, 0);
  KVEC_CHECK_LT(begin, end);
  KVEC_CHECK_LE(end, a.cols());
  const int m = a.rows(), n = a.cols(), w = end - begin;
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(m, w, {a.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    std::copy(a.data().begin() + static_cast<size_t>(i) * n + begin,
              a.data().begin() + static_cast<size_t>(i) * n + end,
              out.data().begin() + static_cast<size_t>(i) * w);
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, begin, m, n, w]() {
      ia->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < w; ++j) {
          ia->grad[static_cast<size_t>(i) * n + begin + j] +=
              io->grad[static_cast<size_t>(i) * w + j];
        }
      }
    };
  }
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
Tensor ElementwiseOp(const Tensor& a, Fwd forward, Bwd backward_from_output) {
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(a.rows(), a.cols(), {a.impl()}, needs_grad);
  {
    const float* pa = a.data().data();
    float* po = out.data().data();
    ForEachSpan(a.data().size(), [=](int i0, int i1) {
      for (int i = i0; i < i1; ++i) po[i] = forward(pa[i]);
    });
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, backward_from_output]() {
      ia->EnsureGrad();
      const float* dy = io->grad.data();
      const float* y = io->data.data();
      const float* x = ia->data.data();
      float* dx = ia->grad.data();
      ForEachSpan(io->grad.size(), [=](int i0, int i1) {
        for (int i = i0; i < i1; ++i) {
          dx[i] += dy[i] * backward_from_output(y[i], x[i]);
        }
      });
    };
  }
  return out;
}

}  // namespace

Tensor Relu(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float y, float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  return ElementwiseOp(
      a,
      [](float x) {
        return 0.5f * x * (1.0f + std::tanh(kC * (x + kA * x * x * x)));
      },
      [](float y, float x) {
        const float u = kC * (x + kA * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kA * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y, float x) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return std::tanh(x); },
      [](float y, float x) { return 1.0f - y * y; });
}

Tensor Log(const Tensor& a, float eps) {
  return ElementwiseOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float y, float x) { return 1.0f / std::max(x, eps); });
}

Tensor Softmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  SoftmaxForward(a.data(), nullptr, m, n, out.data());
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      SoftmaxBackwardAll(ia.get(), io, m, n);
    };
  }
  return out;
}

Tensor MaskedSoftmax(const Tensor& a, const Tensor& mask) {
  KVEC_CHECK_EQ(a.rows(), mask.rows());
  KVEC_CHECK_EQ(a.cols(), mask.cols());
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  SoftmaxForward(a.data(), mask.data().data(), m, n, out.data());
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      SoftmaxBackwardAll(ia.get(), io, m, n);
    };
  }
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  // log softmax = x - max - log(sum exp(x - max))
  for (int r = 0; r < m; ++r) {
    const float* in_row = a.data().data() + static_cast<size_t>(r) * n;
    float* out_row = out.data().data() + static_cast<size_t>(r) * n;
    float max_value = *std::max_element(in_row, in_row + n);
    float total = 0.0f;
    for (int c = 0; c < n; ++c) total += std::exp(in_row[c] - max_value);
    float log_total = std::log(total);
    for (int c = 0; c < n; ++c) {
      out_row[c] = in_row[c] - max_value - log_total;
    }
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      ia->EnsureGrad();
      for (int r = 0; r < m; ++r) {
        const float* y = io->data.data() + static_cast<size_t>(r) * n;
        const float* dy = io->grad.data() + static_cast<size_t>(r) * n;
        float* dx = ia->grad.data() + static_cast<size_t>(r) * n;
        float total_dy = 0.0f;
        for (int c = 0; c < n; ++c) total_dy += dy[c];
        for (int c = 0; c < n; ++c) {
          dx[c] += dy[c] - std::exp(y[c]) * total_dy;
        }
      }
    };
  }
  return out;
}

Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training) {
  KVEC_CHECK_GE(p, 0.0f);
  KVEC_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(a.rows(), a.cols(), {a.impl()}, needs_grad);
  auto mask = std::make_shared<std::vector<float>>(a.size());
  const float keep_scale = 1.0f / (1.0f - p);
  for (int i = 0; i < a.size(); ++i) {
    (*mask)[i] = rng.NextBernoulli(p) ? 0.0f : keep_scale;
    out.data()[i] = a.data()[i] * (*mask)[i];
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, mask]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < io->grad.size(); ++i) {
        ia->grad[i] += io->grad[i] * (*mask)[i];
      }
    };
  }
  return out;
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  KVEC_CHECK_EQ(gamma.rows(), 1);
  KVEC_CHECK_EQ(beta.rows(), 1);
  KVEC_CHECK_EQ(gamma.cols(), a.cols());
  KVEC_CHECK_EQ(beta.cols(), a.cols());
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a, &gamma, &beta});
  Tensor out =
      MakeOpOutput(m, n, {a.impl(), gamma.impl(), beta.impl()}, needs_grad);
  // Cache the normalised activations and 1/std per row for the backward pass.
  auto normalized = std::make_shared<std::vector<float>>(a.size());
  auto inv_std = std::make_shared<std::vector<float>>(m);
  {
    const float* pa = a.data().data();
    const float* pg = gamma.data().data();
    const float* pbeta = beta.data().data();
    float* po = out.data().data();
    float* pnorm = normalized->data();
    float* pistd = inv_std->data();
    ForEachRowBlock(m, n, [=](int r0, int r1) {
      for (int r = r0; r < r1; ++r) {
        const float* x = pa + static_cast<size_t>(r) * n;
        float mean = 0.0f;
        for (int c = 0; c < n; ++c) mean += x[c];
        mean /= static_cast<float>(n);
        float var = 0.0f;
        for (int c = 0; c < n; ++c) var += (x[c] - mean) * (x[c] - mean);
        var /= static_cast<float>(n);
        float istd = 1.0f / std::sqrt(var + eps);
        pistd[r] = istd;
        float* norm_row = pnorm + static_cast<size_t>(r) * n;
        float* out_row = po + static_cast<size_t>(r) * n;
        for (int c = 0; c < n; ++c) {
          float xhat = (x[c] - mean) * istd;
          norm_row[c] = xhat;
          out_row[c] = pg[c] * xhat + pbeta[c];
        }
      }
    });
  }
  if (needs_grad) {
    auto ia = a.impl(), ig = gamma.impl(), ib = beta.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ig, ib, io, normalized, inv_std, m, n]() {
      for (int r = 0; r < m; ++r) {
      const float* dy = io->grad.data() + static_cast<size_t>(r) * n;
      const float* xhat = normalized->data() + static_cast<size_t>(r) * n;
      if (ig->requires_grad) {
        ig->EnsureGrad();
        for (int c = 0; c < n; ++c) ig->grad[c] += dy[c] * xhat[c];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (int c = 0; c < n; ++c) ib->grad[c] += dy[c];
      }
      if (ia->requires_grad) {
        ia->EnsureGrad();
        // dxhat = dy * gamma; dx = istd*(dxhat - mean(dxhat)
        //                               - xhat*mean(dxhat*xhat))
        float mean_dxhat = 0.0f, mean_dxhat_xhat = 0.0f;
        for (int c = 0; c < n; ++c) {
          float dxh = dy[c] * ig->data[c];
          mean_dxhat += dxh;
          mean_dxhat_xhat += dxh * xhat[c];
        }
        mean_dxhat /= static_cast<float>(n);
        mean_dxhat_xhat /= static_cast<float>(n);
        float* dx = ia->grad.data() + static_cast<size_t>(r) * n;
        for (int c = 0; c < n; ++c) {
          float dxh = dy[c] * ig->data[c];
          dx[c] += (*inv_std)[r] *
                   (dxh - mean_dxhat - xhat[c] * mean_dxhat_xhat);
        }
      }
      }
    };
  }
  return out;
}

Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& indices) {
  KVEC_CHECK(!indices.empty());
  const int vocab = table.rows(), d = table.cols();
  const int m = static_cast<int>(indices.size());
  bool needs_grad = AnyRequiresGrad({&table});
  Tensor out = MakeOpOutput(m, d, {table.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    KVEC_CHECK_GE(indices[i], 0);
    KVEC_CHECK_LT(indices[i], vocab) << "embedding index out of range";
    std::copy(table.data().begin() + static_cast<size_t>(indices[i]) * d,
              table.data().begin() + static_cast<size_t>(indices[i] + 1) * d,
              out.data().begin() + static_cast<size_t>(i) * d);
  }
  if (needs_grad) {
    auto it = table.impl();
    TensorImpl* io = out.impl().get();
    auto idx = std::make_shared<std::vector<int>>(indices);
    out.impl()->backward_fn = [it, io, idx, d]() {
      it->EnsureGrad();
      for (size_t i = 0; i < idx->size(); ++i) {
        for (int c = 0; c < d; ++c) {
          it->grad[static_cast<size_t>((*idx)[i]) * d + c] +=
              io->grad[i * d + c];
        }
      }
    };
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  bool needs_grad = AnyRequiresGrad({&a});
  Tensor out = MakeOpOutput(1, 1, {a.impl()}, needs_grad);
  float total = 0.0f;
  for (float v : a.data()) total += v;
  out.data()[0] = total;
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io]() {
      ia->EnsureGrad();
      for (float& g : ia->grad) g += io->grad[0];
    };
  }
  return out;
}

Tensor MeanAll(const Tensor& a) {
  return Affine(SumAll(a), 1.0f / static_cast<float>(a.size()), 0.0f);
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& labels) {
  KVEC_CHECK_EQ(static_cast<size_t>(logits.rows()), labels.size());
  const int m = logits.rows(), n = logits.cols();
  bool needs_grad = AnyRequiresGrad({&logits});
  Tensor out = MakeOpOutput(1, 1, {logits.impl()}, needs_grad);
  auto probs = std::make_shared<std::vector<float>>(logits.size());
  SoftmaxForward(logits.data(), nullptr, m, n, *probs);
  float loss = 0.0f;
  for (int r = 0; r < m; ++r) {
    KVEC_CHECK_GE(labels[r], 0);
    KVEC_CHECK_LT(labels[r], n) << "label out of range";
    loss -= std::log(
        std::max((*probs)[static_cast<size_t>(r) * n + labels[r]], 1e-12f));
  }
  out.data()[0] = loss;
  if (needs_grad) {
    auto il = logits.impl();
    TensorImpl* io = out.impl().get();
    auto labels_copy = std::make_shared<std::vector<int>>(labels);
    out.impl()->backward_fn = [il, io, probs, labels_copy, m, n]() {
      il->EnsureGrad();
      const float g = io->grad[0];
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          float delta = (c == (*labels_copy)[r]) ? 1.0f : 0.0f;
          il->grad[static_cast<size_t>(r) * n + c] +=
              g * ((*probs)[static_cast<size_t>(r) * n + c] - delta);
        }
      }
    };
  }
  return out;
}

Tensor MseLoss(const Tensor& pred, const std::vector<float>& targets) {
  KVEC_CHECK_EQ(pred.cols(), 1);
  KVEC_CHECK_EQ(static_cast<size_t>(pred.rows()), targets.size());
  const int m = pred.rows();
  bool needs_grad = AnyRequiresGrad({&pred});
  Tensor out = MakeOpOutput(1, 1, {pred.impl()}, needs_grad);
  float loss = 0.0f;
  for (int r = 0; r < m; ++r) {
    float diff = pred.data()[r] - targets[r];
    loss += diff * diff;
  }
  out.data()[0] = loss / static_cast<float>(m);
  if (needs_grad) {
    auto ip = pred.impl();
    TensorImpl* io = out.impl().get();
    auto targets_copy = std::make_shared<std::vector<float>>(targets);
    out.impl()->backward_fn = [ip, io, targets_copy, m]() {
      ip->EnsureGrad();
      const float g = io->grad[0] * 2.0f / static_cast<float>(m);
      for (int r = 0; r < m; ++r) {
        ip->grad[r] += g * (ip->data[r] - (*targets_copy)[r]);
      }
    };
  }
  return out;
}

int ArgMaxRow(const Tensor& a, int row) {
  KVEC_CHECK_GE(row, 0);
  KVEC_CHECK_LT(row, a.rows());
  int best = 0;
  float best_value = a.At(row, 0);
  for (int c = 1; c < a.cols(); ++c) {
    if (a.At(row, c) > best_value) {
      best_value = a.At(row, c);
      best = c;
    }
  }
  return best;
}

}  // namespace ops
}  // namespace kvec
