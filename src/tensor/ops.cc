#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace kvec {
namespace ops {
namespace {

using internal::MakeOpOutput;

bool AnyRequiresGrad(std::initializer_list<const Tensor*> tensors) {
  for (const Tensor* t : tensors) {
    if (t->requires_grad()) return true;
  }
  return false;
}

// Row-wise softmax of `scores` (+ optional additive constant mask) shared by
// Softmax / MaskedSoftmax / LogSoftmax forward passes.
void SoftmaxForward(const std::vector<float>& scores, const float* mask,
                    int rows, int cols, std::vector<float>& out) {
  for (int r = 0; r < rows; ++r) {
    const float* in_row = scores.data() + static_cast<size_t>(r) * cols;
    const float* mask_row =
        mask ? mask + static_cast<size_t>(r) * cols : nullptr;
    float* out_row = out.data() + static_cast<size_t>(r) * cols;
    float max_value = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < cols; ++c) {
      float v = in_row[c] + (mask_row ? mask_row[c] : 0.0f);
      out_row[c] = v;
      max_value = std::max(max_value, v);
    }
    float total = 0.0f;
    for (int c = 0; c < cols; ++c) {
      out_row[c] = std::exp(out_row[c] - max_value);
      total += out_row[c];
    }
    KVEC_CHECK_GT(total, 0.0f) << "softmax over a fully masked row";
    for (int c = 0; c < cols; ++c) out_row[c] /= total;
  }
}

// dX for a softmax output Y with upstream dY: dx = y .* (dy - sum(dy .* y)).
void SoftmaxBackwardRow(const float* y, const float* dy, int cols, float* dx) {
  float dot = 0.0f;
  for (int c = 0; c < cols; ++c) dot += dy[c] * y[c];
  for (int c = 0; c < cols; ++c) dx[c] += y[c] * (dy[c] - dot);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch";
  const int m = a.rows(), k = a.cols(), n = b.cols();
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out = MakeOpOutput(m, n, {a.impl(), b.impl()}, needs_grad);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float aip = pa[static_cast<size_t>(i) * k + p];
      if (aip == 0.0f) continue;
      const float* b_row = pb + static_cast<size_t>(p) * n;
      float* o_row = po + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) o_row[j] += aip * b_row[j];
    }
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, k, n]() {
      const float* dy = io->grad.data();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        // dA = dY B^T
        for (int i = 0; i < m; ++i) {
          for (int p = 0; p < k; ++p) {
            float acc = 0.0f;
            const float* dy_row = dy + static_cast<size_t>(i) * n;
            const float* b_row = ib->data.data() + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j) acc += dy_row[j] * b_row[j];
            ia->grad[static_cast<size_t>(i) * k + p] += acc;
          }
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        // dB = A^T dY
        for (int p = 0; p < k; ++p) {
          for (int i = 0; i < m; ++i) {
            const float aip = ia->data[static_cast<size_t>(i) * k + p];
            if (aip == 0.0f) continue;
            const float* dy_row = dy + static_cast<size_t>(i) * n;
            float* db_row = ib->grad.data() + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j) db_row[j] += aip * dy_row[j];
          }
        }
      }
    };
  }
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.cols(), b.cols()) << "MatMulTransposeB shape mismatch";
  const int m = a.rows(), k = a.cols(), n = b.rows();
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out = MakeOpOutput(m, n, {a.impl(), b.impl()}, needs_grad);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  for (int i = 0; i < m; ++i) {
    const float* a_row = pa + static_cast<size_t>(i) * k;
    float* o_row = po + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* b_row = pb + static_cast<size_t>(j) * k;
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      o_row[j] = acc;
    }
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, k, n]() {
      const float* dy = io->grad.data();
      if (ia->requires_grad) {
        ia->EnsureGrad();
        // dA = dY B
        for (int i = 0; i < m; ++i) {
          const float* dy_row = dy + static_cast<size_t>(i) * n;
          float* da_row = ia->grad.data() + static_cast<size_t>(i) * k;
          for (int j = 0; j < n; ++j) {
            const float g = dy_row[j];
            if (g == 0.0f) continue;
            const float* b_row = ib->data.data() + static_cast<size_t>(j) * k;
            for (int p = 0; p < k; ++p) da_row[p] += g * b_row[p];
          }
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        // dB = dY^T A
        for (int j = 0; j < n; ++j) {
          float* db_row = ib->grad.data() + static_cast<size_t>(j) * k;
          for (int i = 0; i < m; ++i) {
            const float g = dy[static_cast<size_t>(i) * n + j];
            if (g == 0.0f) continue;
            const float* a_row = ia->data.data() + static_cast<size_t>(i) * k;
            for (int p = 0; p < k; ++p) db_row[p] += g * a_row[p];
          }
        }
      }
    };
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(n, m, {a.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.Set(j, i, a.At(i, j));
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      ia->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          ia->grad[static_cast<size_t>(i) * n + j] +=
              io->grad[static_cast<size_t>(j) * m + i];
        }
      }
    };
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ib->grad[i] += io->grad[i];
        }
      }
    };
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] - b.data()[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ib->grad[i] -= io->grad[i];
        }
      }
    };
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  KVEC_CHECK_EQ(a.cols(), b.cols());
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out =
      MakeOpOutput(a.rows(), a.cols(), {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i] * ib->data[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ib->grad[i] += io->grad[i] * ia->data[i];
        }
      }
    };
  }
  return out;
}

Tensor AddRow(const Tensor& a, const Tensor& bias) {
  KVEC_CHECK_EQ(bias.rows(), 1);
  KVEC_CHECK_EQ(a.cols(), bias.cols());
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a, &bias});
  Tensor out = MakeOpOutput(m, n, {a.impl(), bias.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out.data()[static_cast<size_t>(i) * n + j] =
          a.data()[static_cast<size_t>(i) * n + j] + bias.data()[j];
    }
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = bias.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, n]() {
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          ia->grad[i] += io->grad[i];
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            ib->grad[j] += io->grad[static_cast<size_t>(i) * n + j];
          }
        }
      }
    };
  }
  return out;
}

Tensor Affine(const Tensor& a, float scale, float shift) {
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(a.rows(), a.cols(), {a.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) {
    out.data()[i] = scale * a.data()[i] + shift;
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, scale]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < io->grad.size(); ++i) {
        ia->grad[i] += scale * io->grad[i];
      }
    };
  }
  return out;
}

Tensor AddN(const std::vector<Tensor>& tensors) {
  KVEC_CHECK(!tensors.empty());
  const int m = tensors[0].rows(), n = tensors[0].cols();
  bool needs_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(tensors.size());
  for (const Tensor& t : tensors) {
    KVEC_CHECK_EQ(t.rows(), m);
    KVEC_CHECK_EQ(t.cols(), n);
    needs_grad = needs_grad || t.requires_grad();
    parents.push_back(t.impl());
  }
  Tensor out = MakeOpOutput(m, n, parents, needs_grad);
  for (const Tensor& t : tensors) {
    for (int i = 0; i < t.size(); ++i) out.data()[i] += t.data()[i];
  }
  if (needs_grad) {
    TensorImpl* io = out.impl().get();
    auto impls = out.impl()->parents;
    out.impl()->backward_fn = [io, impls]() {
      for (const auto& parent : impls) {
        if (!parent->requires_grad) continue;
        parent->EnsureGrad();
        for (size_t i = 0; i < io->grad.size(); ++i) {
          parent->grad[i] += io->grad[i];
        }
      }
    };
  }
  return out;
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  KVEC_CHECK_EQ(a.rows(), b.rows());
  const int m = a.rows(), na = a.cols(), nb = b.cols();
  bool needs_grad = AnyRequiresGrad({&a, &b});
  Tensor out = MakeOpOutput(m, na + nb, {a.impl(), b.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < na; ++j) out.Set(i, j, a.At(i, j));
    for (int j = 0; j < nb; ++j) out.Set(i, na + j, b.At(i, j));
  }
  if (needs_grad) {
    auto ia = a.impl(), ib = b.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ib, io, m, na, nb]() {
      const int n = na + nb;
      if (ia->requires_grad) {
        ia->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < na; ++j) {
            ia->grad[static_cast<size_t>(i) * na + j] +=
                io->grad[static_cast<size_t>(i) * n + j];
          }
        }
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < nb; ++j) {
            ib->grad[static_cast<size_t>(i) * nb + j] +=
                io->grad[static_cast<size_t>(i) * n + na + j];
          }
        }
      }
    };
  }
  return out;
}

Tensor StackRows(const std::vector<Tensor>& rows) {
  KVEC_CHECK(!rows.empty());
  const int n = rows[0].cols();
  bool needs_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(rows.size());
  for (const Tensor& row : rows) {
    KVEC_CHECK_EQ(row.rows(), 1);
    KVEC_CHECK_EQ(row.cols(), n);
    needs_grad = needs_grad || row.requires_grad();
    parents.push_back(row.impl());
  }
  const int m = static_cast<int>(rows.size());
  Tensor out = MakeOpOutput(m, n, parents, needs_grad);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.Set(i, j, rows[i].At(0, j));
  }
  if (needs_grad) {
    TensorImpl* io = out.impl().get();
    auto impls = out.impl()->parents;
    out.impl()->backward_fn = [io, impls, n]() {
      for (size_t i = 0; i < impls.size(); ++i) {
        if (!impls[i]->requires_grad) continue;
        impls[i]->EnsureGrad();
        for (int j = 0; j < n; ++j) {
          impls[i]->grad[j] += io->grad[i * n + j];
        }
      }
    };
  }
  return out;
}

Tensor SliceRow(const Tensor& a, int row) { return SliceRows(a, row, row + 1); }

Tensor SliceRows(const Tensor& a, int begin, int end) {
  KVEC_CHECK_GE(begin, 0);
  KVEC_CHECK_LT(begin, end);
  KVEC_CHECK_LE(end, a.rows());
  const int n = a.cols(), m = end - begin;
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  std::copy(a.data().begin() + static_cast<size_t>(begin) * n,
            a.data().begin() + static_cast<size_t>(end) * n,
            out.data().begin());
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, begin, m, n]() {
      ia->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          ia->grad[static_cast<size_t>(begin + i) * n + j] +=
              io->grad[static_cast<size_t>(i) * n + j];
        }
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int begin, int end) {
  KVEC_CHECK_GE(begin, 0);
  KVEC_CHECK_LT(begin, end);
  KVEC_CHECK_LE(end, a.cols());
  const int m = a.rows(), n = a.cols(), w = end - begin;
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(m, w, {a.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    std::copy(a.data().begin() + static_cast<size_t>(i) * n + begin,
              a.data().begin() + static_cast<size_t>(i) * n + end,
              out.data().begin() + static_cast<size_t>(i) * w);
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, begin, m, n, w]() {
      ia->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < w; ++j) {
          ia->grad[static_cast<size_t>(i) * n + begin + j] +=
              io->grad[static_cast<size_t>(i) * w + j];
        }
      }
    };
  }
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
Tensor ElementwiseOp(const Tensor& a, Fwd forward, Bwd backward_from_output) {
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(a.rows(), a.cols(), {a.impl()}, needs_grad);
  for (int i = 0; i < a.size(); ++i) out.data()[i] = forward(a.data()[i]);
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, backward_from_output]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < io->grad.size(); ++i) {
        ia->grad[i] +=
            io->grad[i] * backward_from_output(io->data[i], ia->data[i]);
      }
    };
  }
  return out;
}

}  // namespace

Tensor Relu(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float y, float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  return ElementwiseOp(
      a,
      [](float x) {
        return 0.5f * x * (1.0f + std::tanh(kC * (x + kA * x * x * x)));
      },
      [](float y, float x) {
        const float u = kC * (x + kA * x * x * x);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kA * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float y, float x) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseOp(
      a, [](float x) { return std::tanh(x); },
      [](float y, float x) { return 1.0f - y * y; });
}

Tensor Log(const Tensor& a, float eps) {
  return ElementwiseOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float y, float x) { return 1.0f / std::max(x, eps); });
}

Tensor Softmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  SoftmaxForward(a.data(), nullptr, m, n, out.data());
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      ia->EnsureGrad();
      for (int r = 0; r < m; ++r) {
        SoftmaxBackwardRow(io->data.data() + static_cast<size_t>(r) * n,
                           io->grad.data() + static_cast<size_t>(r) * n, n,
                           ia->grad.data() + static_cast<size_t>(r) * n);
      }
    };
  }
  return out;
}

Tensor MaskedSoftmax(const Tensor& a, const Tensor& mask) {
  KVEC_CHECK_EQ(a.rows(), mask.rows());
  KVEC_CHECK_EQ(a.cols(), mask.cols());
  const int m = a.rows(), n = a.cols();
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  SoftmaxForward(a.data(), mask.data().data(), m, n, out.data());
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      ia->EnsureGrad();
      for (int r = 0; r < m; ++r) {
        SoftmaxBackwardRow(io->data.data() + static_cast<size_t>(r) * n,
                           io->grad.data() + static_cast<size_t>(r) * n, n,
                           ia->grad.data() + static_cast<size_t>(r) * n);
      }
    };
  }
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  const int m = a.rows(), n = a.cols();
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(m, n, {a.impl()}, needs_grad);
  // log softmax = x - max - log(sum exp(x - max))
  for (int r = 0; r < m; ++r) {
    const float* in_row = a.data().data() + static_cast<size_t>(r) * n;
    float* out_row = out.data().data() + static_cast<size_t>(r) * n;
    float max_value = *std::max_element(in_row, in_row + n);
    float total = 0.0f;
    for (int c = 0; c < n; ++c) total += std::exp(in_row[c] - max_value);
    float log_total = std::log(total);
    for (int c = 0; c < n; ++c) {
      out_row[c] = in_row[c] - max_value - log_total;
    }
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, m, n]() {
      ia->EnsureGrad();
      for (int r = 0; r < m; ++r) {
        const float* y = io->data.data() + static_cast<size_t>(r) * n;
        const float* dy = io->grad.data() + static_cast<size_t>(r) * n;
        float* dx = ia->grad.data() + static_cast<size_t>(r) * n;
        float total_dy = 0.0f;
        for (int c = 0; c < n; ++c) total_dy += dy[c];
        for (int c = 0; c < n; ++c) {
          dx[c] += dy[c] - std::exp(y[c]) * total_dy;
        }
      }
    };
  }
  return out;
}

Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training) {
  KVEC_CHECK_GE(p, 0.0f);
  KVEC_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(a.rows(), a.cols(), {a.impl()}, needs_grad);
  auto mask = std::make_shared<std::vector<float>>(a.size());
  const float keep_scale = 1.0f / (1.0f - p);
  for (int i = 0; i < a.size(); ++i) {
    (*mask)[i] = rng.NextBernoulli(p) ? 0.0f : keep_scale;
    out.data()[i] = a.data()[i] * (*mask)[i];
  }
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io, mask]() {
      ia->EnsureGrad();
      for (size_t i = 0; i < io->grad.size(); ++i) {
        ia->grad[i] += io->grad[i] * (*mask)[i];
      }
    };
  }
  return out;
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  KVEC_CHECK_EQ(gamma.rows(), 1);
  KVEC_CHECK_EQ(beta.rows(), 1);
  KVEC_CHECK_EQ(gamma.cols(), a.cols());
  KVEC_CHECK_EQ(beta.cols(), a.cols());
  const int m = a.rows(), n = a.cols();
  bool needs_grad = AnyRequiresGrad({&a, &gamma, &beta});
  Tensor out =
      MakeOpOutput(m, n, {a.impl(), gamma.impl(), beta.impl()}, needs_grad);
  // Cache the normalised activations and 1/std per row for the backward pass.
  auto normalized = std::make_shared<std::vector<float>>(a.size());
  auto inv_std = std::make_shared<std::vector<float>>(m);
  for (int r = 0; r < m; ++r) {
    const float* x = a.data().data() + static_cast<size_t>(r) * n;
    float mean = 0.0f;
    for (int c = 0; c < n; ++c) mean += x[c];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (int c = 0; c < n; ++c) var += (x[c] - mean) * (x[c] - mean);
    var /= static_cast<float>(n);
    float istd = 1.0f / std::sqrt(var + eps);
    (*inv_std)[r] = istd;
    for (int c = 0; c < n; ++c) {
      float xhat = (x[c] - mean) * istd;
      (*normalized)[static_cast<size_t>(r) * n + c] = xhat;
      out.data()[static_cast<size_t>(r) * n + c] =
          gamma.data()[c] * xhat + beta.data()[c];
    }
  }
  if (needs_grad) {
    auto ia = a.impl(), ig = gamma.impl(), ib = beta.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, ig, ib, io, normalized, inv_std, m, n]() {
      for (int r = 0; r < m; ++r) {
      const float* dy = io->grad.data() + static_cast<size_t>(r) * n;
      const float* xhat = normalized->data() + static_cast<size_t>(r) * n;
      if (ig->requires_grad) {
        ig->EnsureGrad();
        for (int c = 0; c < n; ++c) ig->grad[c] += dy[c] * xhat[c];
      }
      if (ib->requires_grad) {
        ib->EnsureGrad();
        for (int c = 0; c < n; ++c) ib->grad[c] += dy[c];
      }
      if (ia->requires_grad) {
        ia->EnsureGrad();
        // dxhat = dy * gamma; dx = istd*(dxhat - mean(dxhat)
        //                               - xhat*mean(dxhat*xhat))
        float mean_dxhat = 0.0f, mean_dxhat_xhat = 0.0f;
        for (int c = 0; c < n; ++c) {
          float dxh = dy[c] * ig->data[c];
          mean_dxhat += dxh;
          mean_dxhat_xhat += dxh * xhat[c];
        }
        mean_dxhat /= static_cast<float>(n);
        mean_dxhat_xhat /= static_cast<float>(n);
        float* dx = ia->grad.data() + static_cast<size_t>(r) * n;
        for (int c = 0; c < n; ++c) {
          float dxh = dy[c] * ig->data[c];
          dx[c] += (*inv_std)[r] *
                   (dxh - mean_dxhat - xhat[c] * mean_dxhat_xhat);
        }
      }
      }
    };
  }
  return out;
}

Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& indices) {
  KVEC_CHECK(!indices.empty());
  const int vocab = table.rows(), d = table.cols();
  const int m = static_cast<int>(indices.size());
  bool needs_grad = table.requires_grad();
  Tensor out = MakeOpOutput(m, d, {table.impl()}, needs_grad);
  for (int i = 0; i < m; ++i) {
    KVEC_CHECK_GE(indices[i], 0);
    KVEC_CHECK_LT(indices[i], vocab) << "embedding index out of range";
    std::copy(table.data().begin() + static_cast<size_t>(indices[i]) * d,
              table.data().begin() + static_cast<size_t>(indices[i] + 1) * d,
              out.data().begin() + static_cast<size_t>(i) * d);
  }
  if (needs_grad) {
    auto it = table.impl();
    TensorImpl* io = out.impl().get();
    auto idx = std::make_shared<std::vector<int>>(indices);
    out.impl()->backward_fn = [it, io, idx, d]() {
      it->EnsureGrad();
      for (size_t i = 0; i < idx->size(); ++i) {
        for (int c = 0; c < d; ++c) {
          it->grad[static_cast<size_t>((*idx)[i]) * d + c] +=
              io->grad[i * d + c];
        }
      }
    };
  }
  return out;
}

Tensor SumAll(const Tensor& a) {
  bool needs_grad = a.requires_grad();
  Tensor out = MakeOpOutput(1, 1, {a.impl()}, needs_grad);
  float total = 0.0f;
  for (float v : a.data()) total += v;
  out.data()[0] = total;
  if (needs_grad) {
    auto ia = a.impl();
    TensorImpl* io = out.impl().get();
    out.impl()->backward_fn = [ia, io]() {
      ia->EnsureGrad();
      for (float& g : ia->grad) g += io->grad[0];
    };
  }
  return out;
}

Tensor MeanAll(const Tensor& a) {
  return Affine(SumAll(a), 1.0f / static_cast<float>(a.size()), 0.0f);
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& labels) {
  KVEC_CHECK_EQ(static_cast<size_t>(logits.rows()), labels.size());
  const int m = logits.rows(), n = logits.cols();
  bool needs_grad = logits.requires_grad();
  Tensor out = MakeOpOutput(1, 1, {logits.impl()}, needs_grad);
  auto probs = std::make_shared<std::vector<float>>(logits.size());
  SoftmaxForward(logits.data(), nullptr, m, n, *probs);
  float loss = 0.0f;
  for (int r = 0; r < m; ++r) {
    KVEC_CHECK_GE(labels[r], 0);
    KVEC_CHECK_LT(labels[r], n) << "label out of range";
    loss -= std::log(
        std::max((*probs)[static_cast<size_t>(r) * n + labels[r]], 1e-12f));
  }
  out.data()[0] = loss;
  if (needs_grad) {
    auto il = logits.impl();
    TensorImpl* io = out.impl().get();
    auto labels_copy = std::make_shared<std::vector<int>>(labels);
    out.impl()->backward_fn = [il, io, probs, labels_copy, m, n]() {
      il->EnsureGrad();
      const float g = io->grad[0];
      for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
          float delta = (c == (*labels_copy)[r]) ? 1.0f : 0.0f;
          il->grad[static_cast<size_t>(r) * n + c] +=
              g * ((*probs)[static_cast<size_t>(r) * n + c] - delta);
        }
      }
    };
  }
  return out;
}

Tensor MseLoss(const Tensor& pred, const std::vector<float>& targets) {
  KVEC_CHECK_EQ(pred.cols(), 1);
  KVEC_CHECK_EQ(static_cast<size_t>(pred.rows()), targets.size());
  const int m = pred.rows();
  bool needs_grad = pred.requires_grad();
  Tensor out = MakeOpOutput(1, 1, {pred.impl()}, needs_grad);
  float loss = 0.0f;
  for (int r = 0; r < m; ++r) {
    float diff = pred.data()[r] - targets[r];
    loss += diff * diff;
  }
  out.data()[0] = loss / static_cast<float>(m);
  if (needs_grad) {
    auto ip = pred.impl();
    TensorImpl* io = out.impl().get();
    auto targets_copy = std::make_shared<std::vector<float>>(targets);
    out.impl()->backward_fn = [ip, io, targets_copy, m]() {
      ip->EnsureGrad();
      const float g = io->grad[0] * 2.0f / static_cast<float>(m);
      for (int r = 0; r < m; ++r) {
        ip->grad[r] += g * (ip->data[r] - (*targets_copy)[r]);
      }
    };
  }
  return out;
}

int ArgMaxRow(const Tensor& a, int row) {
  KVEC_CHECK_GE(row, 0);
  KVEC_CHECK_LT(row, a.rows());
  int best = 0;
  float best_value = a.At(row, 0);
  for (int c = 1; c < a.cols(); ++c) {
    if (a.At(row, c) > best_value) {
      best_value = a.At(row, c);
      best = c;
    }
  }
  return best;
}

}  // namespace ops
}  // namespace kvec
