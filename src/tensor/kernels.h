// Dense float32 GEMM kernels shared by the autograd operators.
//
// The three layouts cover every matmul in the library, forward and backward
// (MatMul, MatMulTransposeB, Linear, and their gradients):
//
//   GemmNN: C[m,n] (+)= A[m,k] · B[k,n]
//   GemmNT: C[m,n] (+)= A[m,k] · B[n,k]^T   (rows of B are the k-vectors)
//   GemmTN: C[m,n] (+)= A[k,m]^T · B[k,n]
//
// All matrices are dense row-major with no padding. `accumulate` selects
// C += (gradient accumulation) vs C = (forward outputs). Kernels are
// register-tiled, cache-blocked, `__restrict`-annotated, and FMA-friendly;
// on x86 they use AVX-512/FMA or AVX2/FMA intrinsics when the compiler
// targets them (-march=native), with a blocked scalar fallback otherwise.
// Work is split over ThreadPool::Global() row panels once the multiply is
// large enough to amortise the fork (see kParallelFlopThreshold).
//
// Aliasing contract: C must not overlap A or B. A and B may alias each
// other (e.g. Q·Qᵀ).
#pragma once

namespace kvec {
namespace kernels {

// Multiplies below this many multiply-accumulates run on the calling thread;
// forking the pool costs ~a few microseconds, so small serving-path matmuls
// ([1,d] x [d,d]) stay inline.
inline constexpr long long kParallelFlopThreshold = 1LL << 18;

void GemmNN(const float* a, const float* b, float* c, int m, int k, int n,
            bool accumulate);
void GemmNT(const float* a, const float* b, float* c, int m, int k, int n,
            bool accumulate);
void GemmTN(const float* a, const float* b, float* c, int m, int k, int n,
            bool accumulate);

// y[n] (+)= x[k] · B[k,n]; the single-row GemmNN, exposed separately so the
// incremental encoder's per-item rows skip Tensor plumbing entirely.
void VecMat(const float* x, const float* b, float* y, int k, int n,
            bool accumulate);

// dot(a, b) over n floats.
float Dot(const float* a, const float* b, int n);

// C[i, :] += bias for every row i of C[m, n]; the broadcast epilogue of a
// batched linear (GemmNN on the weight followed by one bias sweep).
void AddBiasRows(float* c, const float* bias, int m, int n);

}  // namespace kernels
}  // namespace kvec

