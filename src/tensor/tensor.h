// A small dense 2-D float tensor with reverse-mode automatic
// differentiation.
//
// This is the computational substrate for the whole library: the paper's
// model (masked self-attention encoder, LSTM-style fusion, REINFORCE policy)
// is expressed entirely in terms of the operators in `tensor/ops.h`, each of
// which records a node on an implicit tape so that `Tensor::Backward()` can
// propagate gradients to every parameter.
//
// Design notes:
//  * Tensors are 2-D, row-major, float32. Vectors are [1, n] matrices and
//    scalars are [1, 1]; this keeps shape logic trivial and is all the model
//    needs.
//  * `Tensor` is a cheap shared handle (shared_ptr to the implementation).
//    Copying a Tensor aliases storage; `Clone()` deep-copies.
//  * Gradients are accumulated (`+=`) so a value used twice receives both
//    contributions; call `ZeroGrad()` between steps (optimizers do this).
//  * The graph is retained by parent pointers from outputs to inputs, so a
//    forward pass keeps its intermediates alive until the outputs go out of
//    scope. Use `Detach()` to cut the graph (e.g., streaming inference).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace kvec {

struct TensorImpl {
  TensorImpl() = default;
  // Returns `data`/`grad` storage to the BufferPool free list.
  ~TensorImpl();

  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  int rows = 0;
  int cols = 0;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily; same layout as `data`
  // True when `data` came from the BufferPool (Zeros/Full/op outputs). Only
  // pool-acquired storage is returned on destruction; adopted vectors
  // (FromData and friends) free normally. Without the distinction every
  // adopted buffer is a net deposit into the pool — releases permanently
  // outnumber acquires and the free list ratchets up to its cap instead of
  // holding steady at the live working set. `grad` is always pool-acquired.
  bool data_from_pool = false;
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Propagates `grad` of this node into the parents' `grad`.
  std::function<void()> backward_fn;

  void EnsureGrad();
};

// RAII guard that disables autograd tape construction on this thread: while
// at least one InferenceMode is alive, every op produces a plain leaf tensor
// (requires_grad == false, no parents, no backward_fn) regardless of its
// inputs. The serving path (OnlineClassifier / StreamServer) runs under this
// guard so a stream of items builds zero graph nodes — no retroactive
// Detach() needed. Guards nest; the tape resumes when the outermost one
// dies.
class InferenceMode {
 public:
  InferenceMode();
  ~InferenceMode();

  InferenceMode(const InferenceMode&) = delete;
  InferenceMode& operator=(const InferenceMode&) = delete;

  // True when the current thread is inside at least one InferenceMode.
  static bool Enabled();
};

class Tensor {
 public:
  // An empty (undefined) tensor; most APIs reject it.
  Tensor() = default;

  // ---- Factory functions ----
  static Tensor Zeros(int rows, int cols, bool requires_grad = false);
  static Tensor Full(int rows, int cols, float value,
                     bool requires_grad = false);
  static Tensor FromData(int rows, int cols, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  int rows() const;
  int cols() const;
  int size() const { return rows() * cols(); }
  bool requires_grad() const;

  // Element access (bounds-checked); primarily for tests and glue code.
  float At(int row, int col) const;
  void Set(int row, int col, float value);
  float ScalarValue() const;  // requires a [1,1] tensor

  std::vector<float>& data();
  const std::vector<float>& data() const;
  const std::vector<float>& grad() const;

  // Deep copy of values; the copy is a graph leaf.
  Tensor Clone() const;

  // Same values, no graph history, not requiring grad.
  Tensor Detach() const;

  // Runs reverse-mode autodiff from this scalar ([1,1]) tensor. Gradients
  // accumulate into every reachable tensor with requires_grad == true.
  void Backward();

  // Zeroes this tensor's gradient buffer (if any).
  void ZeroGrad();

  std::shared_ptr<TensorImpl> impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // Debug rendering, e.g. "[2x3][1 2 3; 4 5 6]".
  std::string ToString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

namespace internal {

// Creates an op output node. `parents` are recorded only when gradients are
// required so inference builds no graph. The request is ignored (plain leaf
// returned) under InferenceMode.
Tensor MakeOpOutput(int rows, int cols,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    bool requires_grad);

// Process-wide count of graph nodes recorded so far (op outputs that kept
// parents + a backward hook). Monotonic; take a delta around a code region
// to assert it built zero tape (see inference_mode_test.cc).
uint64_t GraphNodesRecorded();

}  // namespace internal
}  // namespace kvec

