#include "tensor/tensor.h"

#include <atomic>
#include <sstream>
#include <unordered_set>

#include "tensor/buffer_pool.h"
#include "util/check.h"

namespace kvec {
namespace {

thread_local int t_inference_depth = 0;
std::atomic<uint64_t> g_graph_nodes_recorded{0};

}  // namespace

InferenceMode::InferenceMode() { ++t_inference_depth; }
InferenceMode::~InferenceMode() { --t_inference_depth; }
bool InferenceMode::Enabled() { return t_inference_depth > 0; }

TensorImpl::~TensorImpl() {
  if (data_from_pool) BufferPool::Global().Release(std::move(data));
  BufferPool::Global().Release(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) {
    grad = BufferPool::Global().Acquire(data.size(), 0.0f);
  }
}

Tensor Tensor::Zeros(int rows, int cols, bool requires_grad) {
  return Full(rows, cols, 0.0f, requires_grad);
}

Tensor Tensor::Full(int rows, int cols, float value, bool requires_grad) {
  KVEC_CHECK_GT(rows, 0);
  KVEC_CHECK_GT(cols, 0);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data =
      BufferPool::Global().Acquire(static_cast<size_t>(rows) * cols, value);
  impl->data_from_pool = true;
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data,
                        bool requires_grad) {
  KVEC_CHECK_GT(rows, 0);
  KVEC_CHECK_GT(cols, 0);
  KVEC_CHECK_EQ(data.size(), static_cast<size_t>(rows) * cols);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData(1, 1, {value}, requires_grad);
}

int Tensor::rows() const {
  KVEC_CHECK(defined());
  return impl_->rows;
}

int Tensor::cols() const {
  KVEC_CHECK(defined());
  return impl_->cols;
}

bool Tensor::requires_grad() const {
  KVEC_CHECK(defined());
  return impl_->requires_grad;
}

float Tensor::At(int row, int col) const {
  KVEC_CHECK(defined());
  KVEC_CHECK_GE(row, 0);
  KVEC_CHECK_LT(row, impl_->rows);
  KVEC_CHECK_GE(col, 0);
  KVEC_CHECK_LT(col, impl_->cols);
  return impl_->data[static_cast<size_t>(row) * impl_->cols + col];
}

void Tensor::Set(int row, int col, float value) {
  KVEC_CHECK(defined());
  KVEC_CHECK_GE(row, 0);
  KVEC_CHECK_LT(row, impl_->rows);
  KVEC_CHECK_GE(col, 0);
  KVEC_CHECK_LT(col, impl_->cols);
  impl_->data[static_cast<size_t>(row) * impl_->cols + col] = value;
}

float Tensor::ScalarValue() const {
  KVEC_CHECK(defined());
  KVEC_CHECK_EQ(size(), 1) << "ScalarValue on a non-scalar tensor";
  return impl_->data[0];
}

std::vector<float>& Tensor::data() {
  KVEC_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  KVEC_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::grad() const {
  KVEC_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

Tensor Tensor::Clone() const {
  KVEC_CHECK(defined());
  return FromData(rows(), cols(), impl_->data, impl_->requires_grad);
}

Tensor Tensor::Detach() const {
  KVEC_CHECK(defined());
  return FromData(rows(), cols(), impl_->data, /*requires_grad=*/false);
}

void Tensor::ZeroGrad() {
  KVEC_CHECK(defined());
  if (impl_->grad.size() == impl_->data.size()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  } else {
    impl_->grad = BufferPool::Global().Acquire(impl_->data.size(), 0.0f);
  }
}

void Tensor::Backward() {
  KVEC_CHECK(defined());
  KVEC_CHECK_EQ(size(), 1) << "Backward must start from a scalar loss";
  KVEC_CHECK(impl_->requires_grad)
      << "Backward on a tensor that does not require grad";

  // Topological order via iterative DFS (post-order).
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  impl_->EnsureGrad();
  impl_->grad[0] += 1.0f;

  // `order` is post-order (leaves first); walk it backwards so each node's
  // gradient is complete before being propagated to its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) node->backward_fn();
  }
}

std::string Tensor::ToString() const {
  if (!defined()) return "[undefined]";
  std::ostringstream out;
  out << "[" << rows() << "x" << cols() << "][";
  for (int r = 0; r < rows(); ++r) {
    if (r > 0) out << "; ";
    for (int c = 0; c < cols(); ++c) {
      if (c > 0) out << " ";
      out << At(r, c);
    }
  }
  out << "]";
  return out.str();
}

namespace internal {

Tensor MakeOpOutput(int rows, int cols,
                    std::vector<std::shared_ptr<TensorImpl>> parents,
                    bool requires_grad) {
  KVEC_CHECK_GT(rows, 0);
  KVEC_CHECK_GT(cols, 0);
  requires_grad = requires_grad && !InferenceMode::Enabled();
  // Op outputs are written in full by the caller, so the buffer contents can
  // stay uninitialised (ops that accumulate zero it themselves).
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data = BufferPool::Global().AcquireUninitialized(
      static_cast<size_t>(rows) * cols);
  impl->data_from_pool = true;
  impl->requires_grad = requires_grad;
  Tensor out(std::move(impl));
  if (requires_grad) {
    out.impl()->parents = std::move(parents);
    out.impl()->EnsureGrad();
    g_graph_nodes_recorded.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

uint64_t GraphNodesRecorded() {
  return g_graph_nodes_recorded.load(std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace kvec
