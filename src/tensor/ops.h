// Differentiable operators over `Tensor`.
//
// Every function returns a new tensor whose backward function accumulates
// gradients into the inputs that require them. All gradients are verified
// against central finite differences in `tests/autograd_test.cc`.
#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace kvec {
namespace ops {

// The masking value standing in for -inf in attention masks. A large-but-
// finite value avoids NaNs from (-inf) - (-inf) in the softmax shift while
// still zeroing the masked weights.
inline constexpr float kNegInf = -1.0e9f;

// ---- Linear algebra ----

// [m,k] x [k,n] -> [m,n]
Tensor MatMul(const Tensor& a, const Tensor& b);

// a * b^T: [m,k] x [n,k] -> [m,n]. Used for Q K^T without materialising K^T.
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

// x W + bias in one graph node (one kernel pass, one output buffer). `bias`
// may be undefined for bias-free layers. This is Linear::Forward's backend.
Tensor LinearForward(const Tensor& x, const Tensor& weight,
                     const Tensor& bias);

Tensor Transpose(const Tensor& a);

// ---- Elementwise / shape ----

Tensor Add(const Tensor& a, const Tensor& b);  // same shape
Tensor Sub(const Tensor& a, const Tensor& b);  // same shape
Tensor Mul(const Tensor& a, const Tensor& b);  // Hadamard, same shape

// Broadcasts the [1,n] row `bias` over every row of `a` ([m,n]).
Tensor AddRow(const Tensor& a, const Tensor& bias);

// scale * a + shift, elementwise constants.
Tensor Affine(const Tensor& a, float scale, float shift);

// Sum of same-shaped tensors; flattens what would otherwise be a deep chain
// of Add nodes (used to accumulate per-step policy losses).
Tensor AddN(const std::vector<Tensor>& tensors);

// a.*b + c.*d in one node; the LSTM cell-state update without three
// intermediate tensors.
Tensor FusedMulAdd(const Tensor& a, const Tensor& b, const Tensor& c,
                   const Tensor& d);

// a .* tanh(b) in one node; the LSTM hidden-state update.
Tensor MulTanh(const Tensor& a, const Tensor& b);

// [m,na] ++ [m,nb] -> [m,na+nb]
Tensor ConcatCols(const Tensor& a, const Tensor& b);

// n-ary column concatenation in a single node; multi-head attention glues
// its head outputs with this instead of a chain of pairwise concats.
Tensor ConcatColsN(const std::vector<Tensor>& parts);

// Stacks n [1,d] rows into [n,d].
Tensor StackRows(const std::vector<Tensor>& rows);

// Copies row `row` of `a` into a [1,n] tensor (gradient routes back).
Tensor SliceRow(const Tensor& a, int row);

// Rows [begin, end) of `a`.
Tensor SliceRows(const Tensor& a, int begin, int end);

// Columns [begin, end) of `a` (gradient routes back). Used to split a
// projection into attention heads.
Tensor SliceCols(const Tensor& a, int begin, int end);

// ---- Nonlinearities ----

Tensor Relu(const Tensor& a);
// Gaussian Error Linear Unit (tanh approximation, as in GPT/BERT).
Tensor Gelu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
// Natural log; inputs are clamped to >= eps to keep log finite.
Tensor Log(const Tensor& a, float eps = 1e-12f);

// Row-wise softmax.
Tensor Softmax(const Tensor& a);

// Row-wise softmax of (a + mask); `mask` is a constant (no gradient) matrix
// of {0, kNegInf} entries — the paper's dynamic mask matrix M(t).
Tensor MaskedSoftmax(const Tensor& a, const Tensor& mask);

// Row-wise log-softmax.
Tensor LogSoftmax(const Tensor& a);

// Inverted dropout: scales kept activations by 1/(1-p). Identity when
// `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training);

// Row-wise layer normalisation with learnable gain/bias ([1,d] each).
Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

// ---- Gather ----

// Rows of `table` ([vocab,d]) selected by `indices` -> [n,d]. Gradient
// scatter-adds into the table.
Tensor EmbeddingGather(const Tensor& table, const std::vector<int>& indices);

// ---- Reductions & losses ----

Tensor SumAll(const Tensor& a);   // -> [1,1]
Tensor MeanAll(const Tensor& a);  // -> [1,1]

// Sum over rows of -log softmax(logits)[label]: the paper's l1 term.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& labels);

// Mean of (pred_i - target_i)^2 over a [n,1] prediction column; targets are
// constants (the baseline regression of Algorithm 1, line 19).
Tensor MseLoss(const Tensor& pred, const std::vector<float>& targets);

// ---- Non-differentiable helpers ----

// argmax over the single row of a [1,C] tensor.
int ArgMaxRow(const Tensor& a, int row);

}  // namespace ops
}  // namespace kvec

