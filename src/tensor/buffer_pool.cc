#include "tensor/buffer_pool.h"

#include <cstdlib>
#include <limits>
#include <utility>

namespace kvec {

BufferPool::BufferPool() {
  if (const char* env = std::getenv("KVEC_NO_BUFFER_POOL")) {
    if (env[0] != '\0' && env[0] != '0') enabled_ = false;
  }
}

BufferPool& BufferPool::Global() {
  static auto* pool = new BufferPool();  // leaked: see header
  return *pool;
}

std::vector<float> BufferPool::Take(size_t n) {
  std::vector<float> buffer;
  MutexLock lock(mutex_);
  if (enabled_ && n > 0) {
    // Smallest cached buffer whose capacity fits; an exact-size match is
    // the common case because op shapes repeat every step. Everything at
    // and beyond lower_bound only grows, so if the smallest sufficient
    // buffer exceeds the slack cap, all candidates do.
    auto it = free_lists_.lower_bound(n);
    if (it != free_lists_.end() &&
        it->first <= n * kMaxCapacitySlackFactor) {
      buffer = std::move(it->second.back());
      it->second.pop_back();
      cached_floats_ -= it->first;
      if (it->second.empty()) free_lists_.erase(it);
      ++stats_.hits;
    } else {
      if (it != free_lists_.end()) ++stats_.oversized_rejects;
      ++stats_.misses;
    }
  } else if (n > 0) {
    ++stats_.misses;
  }
  return buffer;
}

std::vector<float> BufferPool::Acquire(size_t n, float fill) {
  std::vector<float> buffer = Take(n);
  buffer.assign(n, fill);
  return buffer;
}

std::vector<float> BufferPool::AcquireUninitialized(size_t n) {
  std::vector<float> buffer = Take(n);
  if (buffer.size() >= n) {
    buffer.resize(n);  // shrink: no element writes, contents stay stale
  } else {
#ifdef NDEBUG
    buffer.assign(n, 0.0f);  // fresh or undersized storage: pay the fill
#else
    // Debug builds poison fresh "uninitialized" buffers so an op that fails
    // to overwrite its whole output surfaces as NaNs instead of silently
    // reading zeros (pool hits already hand back stale contents).
    buffer.assign(n, std::numeric_limits<float>::quiet_NaN());
#endif
  }
  return buffer;
}

void BufferPool::Release(std::vector<float>&& buffer) {
  const size_t capacity = buffer.capacity();
  if (capacity == 0) return;
  MutexLock lock(mutex_);
  if (!enabled_ || capacity > max_cached_floats_) {
    ++stats_.dropped;
    return;  // `buffer` frees on scope exit
  }
  // When the budget is full, prefer the incoming buffer over strictly
  // larger cached ones. Without this, oversized blocks that the slack cap
  // keeps rejecting at Take() would occupy the budget forever, wedging the
  // pool into an all-miss/all-drop state once the workload's shapes shrink.
  while (!free_lists_.empty() &&
         cached_floats_ + capacity > max_cached_floats_) {
    auto largest = std::prev(free_lists_.end());
    if (largest->first <= capacity) break;
    largest->second.pop_back();  // frees one largest cached buffer
    cached_floats_ -= largest->first;
    if (largest->second.empty()) free_lists_.erase(largest);
    ++stats_.evicted;
  }
  if (cached_floats_ + capacity > max_cached_floats_) {
    ++stats_.dropped;
    return;
  }
  free_lists_[capacity].push_back(std::move(buffer));
  cached_floats_ += capacity;
  ++stats_.returned;
}

void BufferPool::SetEnabled(bool enabled) {
  MutexLock lock(mutex_);
  enabled_ = enabled;
}

void BufferPool::SetMaxCachedFloats(size_t max_cached_floats) {
  MutexLock lock(mutex_);
  max_cached_floats_ = max_cached_floats;
}

bool BufferPool::enabled() const {
  MutexLock lock(mutex_);
  return enabled_;
}

void BufferPool::Clear() {
  MutexLock lock(mutex_);
  free_lists_.clear();
  cached_floats_ = 0;
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mutex_);
  Stats out = stats_;
  out.cached_floats = cached_floats_;
  out.cached_buffers = 0;
  for (const auto& [capacity, buffers] : free_lists_) {
    out.cached_buffers += buffers.size();
  }
  return out;
}

}  // namespace kvec
