// A thread-safe free list of float buffers behind tensor allocation.
//
// Every op output is a fresh TensorImpl with a std::vector<float> payload;
// a training step makes hundreds of them and the serving loop makes several
// per stream item. Instead of hitting the allocator each time, TensorImpl
// returns its buffers here on destruction and Tensor::Zeros/Full (and
// EnsureGrad) reacquire them. Buffers are keyed by capacity and handed out
// smallest-sufficient-first (bounded by kMaxCapacitySlackFactor, below), so
// steady-state training/serving recycles the same arena of vectors with
// zero malloc traffic.
//
// The pool is bounded (kDefaultMaxCachedFloats); releases beyond the bound
// free normally. Disable with SetEnabled(false) (or KVEC_NO_BUFFER_POOL=1 in
// the environment) to fall back to plain allocation, e.g. under ASan when
// hunting use-after-free through recycled storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace kvec {

class BufferPool {
 public:
  // ~256 MB of cached float storage.
  static constexpr size_t kDefaultMaxCachedFloats = size_t{1} << 26;

  // A cached buffer is handed out only if its capacity is at most this
  // factor times the request. Without the cap, the smallest-sufficient
  // lookup can pin a huge buffer to a tiny request (ask for 16 floats,
  // receive a 1M-float block), starving later large acquires and inflating
  // live memory; an oversized candidate is rejected (counted in
  // Stats::oversized_rejects) and the acquire falls through to a miss.
  static constexpr size_t kMaxCapacitySlackFactor = 2;

  struct Stats {
    uint64_t hits = 0;      // acquires served from the free list
    uint64_t misses = 0;    // acquires that had to allocate
    uint64_t returned = 0;  // buffers accepted back
    uint64_t dropped = 0;   // buffers rejected (pool full/disabled)
    // Misses where a cached buffer fit but exceeded the slack cap.
    uint64_t oversized_rejects = 0;
    // Cached buffers freed to make room for a smaller incoming release.
    uint64_t evicted = 0;
    size_t cached_floats = 0;
    size_t cached_buffers = 0;
  };

  // Process-wide pool used by Tensor. Never destroyed (tensors may die
  // during static teardown).
  static BufferPool& Global();

  // A buffer with size() == n, every element set to `fill`.
  std::vector<float> Acquire(size_t n, float fill) KVEC_EXCLUDES(mutex_);

  // A buffer with size() == n and unspecified contents — for op outputs the
  // caller overwrites entirely. A pool hit whose previous size covers n is
  // O(1) (shrinking resize writes nothing); other paths fall back to a fill.
  std::vector<float> AcquireUninitialized(size_t n) KVEC_EXCLUDES(mutex_);

  // Hands storage back; takes any vector (moved-from, empty, oversized).
  void Release(std::vector<float>&& buffer) KVEC_EXCLUDES(mutex_);

  void SetEnabled(bool enabled) KVEC_EXCLUDES(mutex_);
  bool enabled() const KVEC_EXCLUDES(mutex_);

  // Caps cached storage (in floats). Shrinking below the current cache
  // does not free anything eagerly; the next releases rebalance.
  void SetMaxCachedFloats(size_t max_cached_floats) KVEC_EXCLUDES(mutex_);

  // Drops all cached buffers (keeps the enabled flag).
  void Clear() KVEC_EXCLUDES(mutex_);

  Stats stats() const KVEC_EXCLUDES(mutex_);

 private:
  BufferPool();

  // Pops the smallest sufficient free buffer (empty vector on miss).
  std::vector<float> Take(size_t n) KVEC_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  bool enabled_ KVEC_GUARDED_BY(mutex_) = true;
  size_t max_cached_floats_ KVEC_GUARDED_BY(mutex_) = kDefaultMaxCachedFloats;
  size_t cached_floats_ KVEC_GUARDED_BY(mutex_) = 0;
  // capacity -> free buffers of exactly that capacity.
  std::map<size_t, std::vector<std::vector<float>>> free_lists_
      KVEC_GUARDED_BY(mutex_);
  Stats stats_ KVEC_GUARDED_BY(mutex_);
};

}  // namespace kvec

