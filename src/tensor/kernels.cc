#include "tensor/kernels.h"

#include <algorithm>

#include "util/thread_pool.h"

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace kvec {
namespace kernels {
namespace {

// ---- Portable SIMD shims ----------------------------------------------------
//
// One micro-kernel body is written against these; the register width and tile
// shape adapt to the best ISA the compiler targets. kMR x (kNV * kVecWidth)
// is the C tile held in registers across the whole k loop.

#if defined(__AVX512F__)

using VReg = __m512;
constexpr int kVecWidth = 16;
constexpr int kMR = 6;  // C-tile rows: 24 accumulators + 4 B regs < 32 zmm
constexpr int kNV = 4;  // C-tile width in vectors (64 floats)
inline VReg VLoad(const float* p) { return _mm512_loadu_ps(p); }
inline void VStore(float* p, VReg v) { _mm512_storeu_ps(p, v); }
inline VReg VBroadcast(float x) { return _mm512_set1_ps(x); }
inline VReg VZero() { return _mm512_setzero_ps(); }
inline VReg VFma(VReg a, VReg b, VReg acc) { return _mm512_fmadd_ps(a, b, acc); }
inline VReg VAdd(VReg a, VReg b) { return _mm512_add_ps(a, b); }
inline VReg VMul(VReg a, VReg b) { return _mm512_mul_ps(a, b); }
inline float VSum(VReg v) { return _mm512_reduce_add_ps(v); }
#define KVEC_HAVE_SIMD 1

#elif defined(__AVX2__) && defined(__FMA__)

using VReg = __m256;
constexpr int kVecWidth = 8;
constexpr int kMR = 4;
constexpr int kNV = 2;  // 16 floats; 8 accumulators + loads fit 16 ymm regs
inline VReg VLoad(const float* p) { return _mm256_loadu_ps(p); }
inline void VStore(float* p, VReg v) { _mm256_storeu_ps(p, v); }
inline VReg VBroadcast(float x) { return _mm256_set1_ps(x); }
inline VReg VZero() { return _mm256_setzero_ps(); }
inline VReg VFma(VReg a, VReg b, VReg acc) { return _mm256_fmadd_ps(a, b, acc); }
inline VReg VAdd(VReg a, VReg b) { return _mm256_add_ps(a, b); }
inline VReg VMul(VReg a, VReg b) { return _mm256_mul_ps(a, b); }
inline float VSum(VReg v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}
#define KVEC_HAVE_SIMD 1

#else
#define KVEC_HAVE_SIMD 0
#endif

#if KVEC_HAVE_SIMD

// ---- Broadcast micro-kernel (GemmNN / GemmTN / VecMat) ----------------------
//
// C tile [MR x NV*W] (+)= A-slab · B-panel. A is accessed through explicit
// row/column strides so the same body serves A (a_rs=k, a_cs=1) and A^T
// (a_rs=1, a_cs=m): the broadcast of one scalar per (row, p) hides the
// transposed layout entirely.
template <int MR, int NV>
inline void MicroBroadcast(const float* __restrict a, long a_rs, long a_cs,
                           const float* __restrict b, long ldb,
                           float* __restrict c, long ldc, int k,
                           bool accumulate) {
  VReg acc[MR][NV];
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < NV; ++v) {
      acc[r][v] = accumulate ? VLoad(c + r * ldc + v * kVecWidth) : VZero();
    }
  }
  for (int p = 0; p < k; ++p) {
    VReg bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = VLoad(b + p * ldb + v * kVecWidth);
    for (int r = 0; r < MR; ++r) {
      const VReg av = VBroadcast(a[r * a_rs + p * a_cs]);
      for (int v = 0; v < NV; ++v) acc[r][v] = VFma(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int v = 0; v < NV; ++v) {
      VStore(c + r * ldc + v * kVecWidth, acc[r][v]);
    }
  }
}

// ---- Dot micro-kernel (GemmNT) ----------------------------------------------
//
// C tile [MR x NB] where every entry is a length-k dot product of an A row
// with a B row. Vector accumulators reduce horizontally once per tile.
template <int MR, int NB>
inline void MicroDot(const float* __restrict a, long lda,
                     const float* __restrict b, long ldb,
                     float* __restrict c, long ldc, int k, bool accumulate) {
  VReg acc[MR][NB];
  for (int r = 0; r < MR; ++r) {
    for (int s = 0; s < NB; ++s) acc[r][s] = VZero();
  }
  const int kv = k - k % kVecWidth;
  for (int p = 0; p < kv; p += kVecWidth) {
    VReg av[MR], bv[NB];
    for (int r = 0; r < MR; ++r) av[r] = VLoad(a + r * lda + p);
    for (int s = 0; s < NB; ++s) bv[s] = VLoad(b + s * ldb + p);
    for (int r = 0; r < MR; ++r) {
      for (int s = 0; s < NB; ++s) acc[r][s] = VFma(av[r], bv[s], acc[r][s]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int s = 0; s < NB; ++s) {
      float total = VSum(acc[r][s]);
      for (int p = kv; p < k; ++p) total += a[r * lda + p] * b[s * ldb + p];
      float* out = c + r * ldc + s;
      *out = accumulate ? *out + total : total;
    }
  }
}

#endif  // KVEC_HAVE_SIMD

// ---- Scalar fallbacks -------------------------------------------------------

// The seed's i-p-j ordering: unit-stride over B and C rows, auto-vectorisable.
// Also used for sub-vector-width column remainders of the SIMD path.
void ScalarBroadcastRange(const float* __restrict a, long a_rs, long a_cs,
                          const float* __restrict b, float* __restrict c,
                          int i0, int i1, int j0, int n, int k,
                          bool accumulate) {
  for (int i = i0; i < i1; ++i) {
    float* __restrict c_row = c + static_cast<long>(i) * n;
    if (!accumulate) {
      for (int j = j0; j < n; ++j) c_row[j] = 0.0f;
    }
    for (int p = 0; p < k; ++p) {
      const float aip = a[i * a_rs + p * a_cs];
      if (aip == 0.0f) continue;
      const float* __restrict b_row = b + static_cast<long>(p) * n;
      for (int j = j0; j < n; ++j) c_row[j] += aip * b_row[j];
    }
  }
}

float ScalarDot(const float* __restrict a, const float* __restrict b, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
}

// ---- Drivers ----------------------------------------------------------------

// Row-panel driver shared by GemmNN (a_rs=k, a_cs=1) and GemmTN (a_rs=1,
// a_cs=m). Processes C rows [i0, i1).
void BroadcastRows(const float* a, long a_rs, long a_cs, const float* b,
                   float* c, int i0, int i1, int k, int n, bool accumulate) {
#if KVEC_HAVE_SIMD
  // Row loop with a tile-size ladder: full kMR tiles, then 2-row, then
  // single-row tiles for the remainder.
  const auto row_ladder = [=](int j, auto&& tile) {
    int i = i0;
    for (; i + kMR <= i1; i += kMR) {
      tile(std::integral_constant<int, kMR>(), i, j);
    }
    for (; i + 2 <= i1; i += 2) tile(std::integral_constant<int, 2>(), i, j);
    for (; i < i1; ++i) tile(std::integral_constant<int, 1>(), i, j);
  };
  constexpr int kPanel = kNV * kVecWidth;
  int j = 0;
  for (; j + kPanel <= n; j += kPanel) {
    row_ladder(j, [=](auto mr, int i, int jj) {
      MicroBroadcast<decltype(mr)::value, kNV>(
          a + i * a_rs, a_rs, a_cs, b + jj, n,
          c + static_cast<long>(i) * n + jj, n, k, accumulate);
    });
  }
  for (; j + kVecWidth <= n; j += kVecWidth) {
    row_ladder(j, [=](auto mr, int i, int jj) {
      MicroBroadcast<decltype(mr)::value, 1>(
          a + i * a_rs, a_rs, a_cs, b + jj, n,
          c + static_cast<long>(i) * n + jj, n, k, accumulate);
    });
  }
  if (j < n) ScalarBroadcastRange(a, a_rs, a_cs, b, c, i0, i1, j, n, k,
                                  accumulate);
#else
  ScalarBroadcastRange(a, a_rs, a_cs, b, c, i0, i1, 0, n, k, accumulate);
#endif
}

void DotRows(const float* a, const float* b, float* c, int i0, int i1, int k,
             int n, bool accumulate) {
#if KVEC_HAVE_SIMD
  constexpr int kNB = 2;  // B rows per tile
  int i = i0;
  for (; i + kMR <= i1; i += kMR) {
    int j = 0;
    for (; j + kNB <= n; j += kNB) {
      MicroDot<kMR, kNB>(a + static_cast<long>(i) * k, k,
                         b + static_cast<long>(j) * k, k,
                         c + static_cast<long>(i) * n + j, n, k, accumulate);
    }
    for (; j < n; ++j) {
      MicroDot<kMR, 1>(a + static_cast<long>(i) * k, k,
                       b + static_cast<long>(j) * k, k,
                       c + static_cast<long>(i) * n + j, n, k, accumulate);
    }
  }
  for (; i < i1; ++i) {
    int j = 0;
    for (; j + kNB <= n; j += kNB) {
      MicroDot<1, kNB>(a + static_cast<long>(i) * k, k,
                       b + static_cast<long>(j) * k, k,
                       c + static_cast<long>(i) * n + j, n, k, accumulate);
    }
    for (; j < n; ++j) {
      MicroDot<1, 1>(a + static_cast<long>(i) * k, k,
                     b + static_cast<long>(j) * k, k,
                     c + static_cast<long>(i) * n + j, n, k, accumulate);
    }
  }
#else
  for (int i = i0; i < i1; ++i) {
    for (int j = 0; j < n; ++j) {
      const float total = ScalarDot(a + static_cast<long>(i) * k,
                                    b + static_cast<long>(j) * k, k);
      float* out = c + static_cast<long>(i) * n + j;
      *out = accumulate ? *out + total : total;
    }
  }
#endif
}

// Splits C rows over the pool when the multiply is big enough. The 8-row
// grain keeps chunk boundaries aligned to full SIMD row-tile ladders while
// staying fine-grained enough to balance uneven panels.
template <typename RowFn>
void ParallelOverRows(int m, long long flops, const RowFn& fn) {
  ParallelForThreshold(flops, kParallelFlopThreshold, m, /*grain=*/8, fn);
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int m, int k, int n,
            bool accumulate) {
  ParallelOverRows(m, static_cast<long long>(m) * k * n,
                   [=](int i0, int i1) {
                     BroadcastRows(a, /*a_rs=*/k, /*a_cs=*/1, b, c, i0, i1, k,
                                   n, accumulate);
                   });
}

void GemmTN(const float* a, const float* b, float* c, int m, int k, int n,
            bool accumulate) {
  ParallelOverRows(m, static_cast<long long>(m) * k * n,
                   [=](int i0, int i1) {
                     BroadcastRows(a, /*a_rs=*/1, /*a_cs=*/m, b, c, i0, i1, k,
                                   n, accumulate);
                   });
}

void GemmNT(const float* a, const float* b, float* c, int m, int k, int n,
            bool accumulate) {
  ParallelOverRows(m, static_cast<long long>(m) * k * n,
                   [=](int i0, int i1) {
                     DotRows(a, b, c, i0, i1, k, n, accumulate);
                   });
}

void VecMat(const float* x, const float* b, float* y, int k, int n,
            bool accumulate) {
  BroadcastRows(x, /*a_rs=*/k, /*a_cs=*/1, b, y, 0, 1, k, n, accumulate);
}

void AddBiasRows(float* c, const float* bias, int m, int n) {
  for (int i = 0; i < m; ++i) {
    float* row = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) row[j] += bias[j];
  }
}

float Dot(const float* a, const float* b, int n) {
#if KVEC_HAVE_SIMD
  VReg acc = VZero();
  const int nv = n - n % kVecWidth;
  for (int i = 0; i < nv; i += kVecWidth) {
    acc = VFma(VLoad(a + i), VLoad(b + i), acc);
  }
  float total = VSum(acc);
  for (int i = nv; i < n; ++i) total += a[i] * b[i];
  return total;
#else
  return ScalarDot(a, b, n);
#endif
}

}  // namespace kernels
}  // namespace kvec
